// Package queue is the deterministic job-queue state machine at the
// heart of the simulation service: submission with a depth cap,
// claim/lease handout, lease renewal and expiry, exactly-once
// completion guarded by lease tokens, bounded retries with exponential
// backoff and seeded jitter, checkpoint-carrying preemption handoff,
// singleflight coalescing of identical submissions, and a terminal
// dead-letter state carrying the last stall report.
//
// The package is pure state: no goroutines, no wall clock, no global
// randomness. Every mutating operation takes the current time as an
// argument and the only randomness is a seeded FNV jitter hash, so a
// test (or the fabric chaos campaign) can drive any interleaving of
// claims, expiries and completions and get bit-identical outcomes.
// The simlint determinism analyzer polices this contract.
//
//simlint:deterministic
package queue

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
)

// State is one job's lifecycle state.
type State int

const (
	// Queued jobs are waiting for a claim (possibly backing off after a
	// failure, possibly coalesced behind an identical primary job).
	Queued State = iota
	// Leased jobs are held by a worker under a live lease.
	Leased
	// Done jobs completed exactly once and carry their result.
	Done
	// Dead jobs exhausted their retries: the dead-letter state, carrying
	// the last error and stall report.
	Dead
)

// String renders the state.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Leased:
		return "leased"
	case Done:
		return "done"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Result is one completed job's summary. Metrics rides as opaque JSON
// so the queue stays decoupled from the simulator's snapshot schema;
// a cache-served result carries the original run's metrics verbatim.
type Result struct {
	Cycles    int64           `json:"cycles"`
	Committed int64           `json:"committed"`
	Worker    string          `json:"worker,omitempty"`
	Metrics   json.RawMessage `json:"metrics,omitempty"`
	// CacheHit marks a result served from the coordinator's result
	// cache or coalesced onto an identical in-flight job, rather than
	// simulated for this submission.
	CacheHit bool `json:"cache_hit,omitempty"`
}

// Job is one unit of work. Fields are exported for the coordinator's
// journal; mutate only through Queue methods.
type Job struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant,omitempty"`
	// Spec is the opaque job payload (the coordinator's JobSpec JSON).
	Spec []byte `json:"spec"`
	// Key is the dedup/cache key (the config+spec fingerprint pair);
	// empty disables coalescing and caching for the job.
	Key string `json:"key,omitempty"`
	// Seq is the submission sequence number; claims hand out eligible
	// jobs in Seq order, so scheduling is FIFO and deterministic.
	Seq int64 `json:"seq"`

	State    State `json:"state"`
	Attempts int   `json:"attempts"` // claims handed out
	Retries  int   `json:"retries"`  // failures + lease expiries so far
	// NotBefore is the earliest time the job may be claimed again
	// (backoff after a failure).
	NotBefore int64 `json:"not_before,omitempty"`
	Submitted int64 `json:"submitted"`

	// Worker, Token and LeaseExpiry describe the current lease. Token
	// is the fencing token: completion and failure reports must present
	// the token of the lease they ran under, so a report from an
	// expired lease (the worker kept running after the reaper reclaimed
	// the job) is rejected instead of double-completing.
	Worker      string `json:"worker,omitempty"`
	Token       uint64 `json:"token,omitempty"`
	LeaseExpiry int64  `json:"lease_expiry,omitempty"`
	// PreemptRequested asks the worker to checkpoint and hand the job
	// back at its next lease renewal (graceful drain / migration).
	PreemptRequested bool `json:"preempt_requested,omitempty"`

	// Checkpoint is the in-flight checkpoint path a preempted job
	// resumes from on its next claim.
	Checkpoint string `json:"checkpoint,omitempty"`
	// CoalescedInto names the identical primary job this submission
	// rides on (singleflight); followers are never claimed.
	CoalescedInto string `json:"coalesced_into,omitempty"`

	LastError string `json:"last_error,omitempty"`
	// StallReport is the rendered sim.StallReport of the last stalled
	// attempt; on a Dead job it is the dead-letter diagnostic.
	StallReport string  `json:"stall_report,omitempty"`
	Result      *Result `json:"result,omitempty"`
}

// Terminal reports whether the job has reached a final state.
func (j *Job) Terminal() bool { return j.State == Done || j.State == Dead }

// Config parameterizes the queue. Durations share whatever time base
// the caller's now values use (the coordinator passes nanoseconds).
type Config struct {
	// Cap bounds the resident (Queued + Leased) job count; submissions
	// beyond it fail with ErrFull. 0 = unlimited.
	Cap int
	// Lease is the claim lease duration.
	Lease int64
	// MaxRetries bounds failures + lease expiries per job; one more
	// pushes the job to Dead.
	MaxRetries int
	// Backoff is the delay before a job's first retry; each further
	// retry doubles it up to MaxBackoff (0 = Backoff×8).
	Backoff    int64
	MaxBackoff int64
	// Seed drives the deterministic jitter added to every backoff.
	Seed int64
}

func (c Config) maxBackoff() int64 {
	if c.MaxBackoff > 0 {
		return c.MaxBackoff
	}
	return c.Backoff * 8
}

// Counters are the queue's monotonic event counts, the source of the
// fabric metrics.
type Counters struct {
	Submitted     int64
	Coalesced     int64
	Completed     int64
	Failures      int64
	Retries       int64
	LeaseExpiries int64
	DeadLetters   int64
	// StaleOps counts rejected operations from expired or superseded
	// leases — each one is a duplicate execution the fencing token
	// stopped from becoming a duplicate completion.
	StaleOps     int64
	Preemptions  int64
	Resumes      int64
	RejectedFull int64
}

// Sentinel errors; the coordinator maps them onto HTTP statuses.
var (
	// ErrFull rejects a submission over the depth cap (HTTP 429).
	ErrFull = errors.New("queue: depth cap reached")
	// ErrStale rejects an operation whose lease no longer stands:
	// wrong worker, superseded token, or a job not in Leased state.
	ErrStale = errors.New("queue: stale lease")
	// ErrUnknown names a job ID the queue has never seen.
	ErrUnknown = errors.New("queue: unknown job")
	// ErrDuplicate rejects a submission reusing a known job ID.
	ErrDuplicate = errors.New("queue: duplicate job id")
)

// Queue is the job-queue state machine. Not safe for concurrent use:
// the coordinator serializes access under its own lock, tests drive it
// single-threaded.
type Queue struct {
	cfg      Config
	jobs     map[string]*Job
	order    []string // job IDs in Seq order
	seq      int64
	tokenSeq uint64
	resident int // Queued + Leased
	counts   Counters
}

// New builds an empty queue.
func New(cfg Config) *Queue {
	return &Queue{cfg: cfg, jobs: make(map[string]*Job)}
}

// Counters returns the current event counts.
func (q *Queue) Counters() Counters { return q.counts }

// Depth returns the resident (Queued + Leased) job count.
func (q *Queue) Depth() int { return q.resident }

// Leased returns the number of jobs currently under lease.
func (q *Queue) Leased() int {
	n := 0
	for _, id := range q.order {
		if q.jobs[id].State == Leased {
			n++
		}
	}
	return n
}

// Get returns the named job.
func (q *Queue) Get(id string) (*Job, bool) {
	j, ok := q.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (q *Queue) Jobs() []*Job {
	out := make([]*Job, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, q.jobs[id])
	}
	return out
}

// Submit enqueues a job. The job must carry ID, Spec and optionally
// Tenant/Key; the queue assigns Seq and state. A submission whose Key
// matches a resident job coalesces onto it (singleflight): it occupies
// a queue slot and completes when the primary does, but is never
// claimed itself.
func (q *Queue) Submit(j *Job, now int64) error {
	if j.ID == "" {
		return fmt.Errorf("queue: empty job id")
	}
	if _, ok := q.jobs[j.ID]; ok {
		return ErrDuplicate
	}
	if q.cfg.Cap > 0 && q.resident >= q.cfg.Cap {
		q.counts.RejectedFull++
		return ErrFull
	}
	q.seq++
	j.Seq = q.seq
	j.State = Queued
	j.Submitted = now
	if j.Key != "" {
		if primary := q.primaryForKey(j.Key); primary != nil {
			j.CoalescedInto = primary.ID
			q.counts.Coalesced++
		}
	}
	q.jobs[j.ID] = j
	q.order = append(q.order, j.ID)
	q.resident++
	q.counts.Submitted++
	return nil
}

// primaryForKey returns the resident non-coalesced job carrying key.
func (q *Queue) primaryForKey(key string) *Job {
	for _, id := range q.order {
		j := q.jobs[id]
		if !j.Terminal() && j.Key == key && j.CoalescedInto == "" {
			return j
		}
	}
	return nil
}

// Load re-installs a journaled job verbatim (coordinator restart).
// Call for every journal record, then Reorder once.
func (q *Queue) Load(j *Job) {
	q.jobs[j.ID] = j
	q.order = append(q.order, j.ID)
	if !j.Terminal() {
		q.resident++
	}
	if j.Seq > q.seq {
		q.seq = j.Seq
	}
	if j.Token > q.tokenSeq {
		q.tokenSeq = j.Token
	}
}

// Reorder restores submission order after a batch of Loads.
func (q *Queue) Reorder() {
	sort.Slice(q.order, func(a, b int) bool {
		ja, jb := q.jobs[q.order[a]], q.jobs[q.order[b]]
		if ja.Seq != jb.Seq {
			return ja.Seq < jb.Seq
		}
		return ja.ID < jb.ID
	})
}

// Claim hands the first eligible queued job to worker under a fresh
// lease and returns it with its fencing token. Eligibility is FIFO by
// submission sequence: Queued, not coalesced, past its backoff.
func (q *Queue) Claim(worker string, now int64) (*Job, uint64, bool) {
	for _, id := range q.order {
		j := q.jobs[id]
		if j.State != Queued || j.CoalescedInto != "" || now < j.NotBefore {
			continue
		}
		j.State = Leased
		j.Worker = worker
		q.tokenSeq++
		j.Token = q.tokenSeq
		j.LeaseExpiry = now + q.cfg.Lease
		j.Attempts++
		if j.Checkpoint != "" {
			q.counts.Resumes++
		}
		return j, j.Token, true
	}
	return nil, 0, false
}

// lease validates that (worker, token) still holds the job's lease.
func (q *Queue) lease(id, worker string, token uint64) (*Job, error) {
	j, ok := q.jobs[id]
	if !ok {
		return nil, ErrUnknown
	}
	if j.State != Leased || j.Worker != worker || j.Token != token {
		q.counts.StaleOps++
		return nil, ErrStale
	}
	return j, nil
}

// Renew extends the lease and reports whether the coordinator has
// requested preemption (the worker should checkpoint and hand back).
func (q *Queue) Renew(id, worker string, token uint64, now int64) (preempt bool, err error) {
	j, err := q.lease(id, worker, token)
	if err != nil {
		return false, err
	}
	j.LeaseExpiry = now + q.cfg.Lease
	return j.PreemptRequested, nil
}

// Complete finishes the job exactly once: only the live lease's worker
// and token are accepted, so a report raced by the reaper (or replayed
// after a duplicate claim) fails with ErrStale. Followers coalesced
// onto the job complete with the same result, marked as cache hits.
// It returns the completed jobs (primary first).
func (q *Queue) Complete(id, worker string, token uint64, res Result, now int64) ([]*Job, error) {
	j, err := q.lease(id, worker, token)
	if err != nil {
		return nil, err
	}
	res.Worker = worker
	q.finish(j, &res)
	done := []*Job{j}
	for _, f := range q.followers(j.ID) {
		fres := res
		fres.CacheHit = true
		q.finish(f, &fres)
		done = append(done, f)
	}
	return done, nil
}

// finish moves a resident job to Done.
func (q *Queue) finish(j *Job, res *Result) {
	j.State = Done
	j.Result = res
	j.Worker = ""
	j.LeaseExpiry = 0
	j.PreemptRequested = false
	q.resident--
	q.counts.Completed++
}

// followers returns the jobs coalesced onto primary, in Seq order.
func (q *Queue) followers(primaryID string) []*Job {
	var out []*Job
	for _, id := range q.order {
		j := q.jobs[id]
		if j.CoalescedInto == primaryID && !j.Terminal() {
			out = append(out, j)
		}
	}
	return out
}

// CompleteCached finishes a queued (never-claimed) job with a cached
// result — the coordinator's result-cache hit path. Followers ride
// along as usual.
func (q *Queue) CompleteCached(id string, res Result, now int64) ([]*Job, error) {
	j, ok := q.jobs[id]
	if !ok {
		return nil, ErrUnknown
	}
	if j.State != Queued {
		return nil, fmt.Errorf("queue: job %s is %s, cached completion needs queued", id, j.State)
	}
	res.CacheHit = true
	q.finish(j, &res)
	done := []*Job{j}
	for _, f := range q.followers(j.ID) {
		fres := res
		q.finish(f, &fres)
		done = append(done, f)
	}
	return done, nil
}

// Fail reports a failed attempt under a live lease: the job retries
// with backoff, or dead-letters once retries are exhausted. stall, when
// non-empty, is the rendered stall report to carry. A failure wipes
// any checkpoint: a stalled or crashed attempt's state is suspect, so
// the retry runs from scratch.
func (q *Queue) Fail(id, worker string, token uint64, errMsg, stall string, now int64) (retried bool, err error) {
	j, err := q.lease(id, worker, token)
	if err != nil {
		return false, err
	}
	q.counts.Failures++
	j.LastError = errMsg
	if stall != "" {
		j.StallReport = stall
	}
	j.Checkpoint = ""
	return q.requeueOrBury(j, now), nil
}

// Preempt hands a leased job back with an in-flight checkpoint: the
// next claim resumes at the exact checkpointed cycle on another
// worker. Preemption is cooperative (not a failure): no retry is
// consumed and no backoff applies.
func (q *Queue) Preempt(id, worker string, token uint64, checkpoint string, now int64) error {
	j, err := q.lease(id, worker, token)
	if err != nil {
		return err
	}
	j.State = Queued
	j.Worker = ""
	j.LeaseExpiry = 0
	j.NotBefore = 0
	j.PreemptRequested = false
	j.Checkpoint = checkpoint
	q.counts.Preemptions++
	return nil
}

// RequestPreempt marks a leased job for preemption; the worker learns
// at its next Renew. Unleased or terminal jobs are left alone.
func (q *Queue) RequestPreempt(id string) bool {
	j, ok := q.jobs[id]
	if !ok || j.State != Leased {
		return false
	}
	j.PreemptRequested = true
	return true
}

// ExpireLeases reclaims every leased job whose lease expired at or
// before now — the reaper pass that recovers jobs from dead or hung
// workers. Each expiry consumes a retry (the attempt may have run
// arbitrarily far); exhausted jobs dead-letter. It returns the
// reclaimed jobs.
func (q *Queue) ExpireLeases(now int64) []*Job {
	var out []*Job
	for _, id := range q.order {
		j := q.jobs[id]
		if j.State != Leased || j.LeaseExpiry > now {
			continue
		}
		q.counts.LeaseExpiries++
		if j.LastError == "" {
			j.LastError = fmt.Sprintf("lease expired on worker %s", j.Worker)
		} else {
			j.LastError = fmt.Sprintf("lease expired on worker %s (previous: %s)", j.Worker, j.LastError)
		}
		// A mid-run checkpoint from the dead worker's attempt is still
		// trustworthy — restore verifies it byte-for-byte against a
		// replay, so a corrupt one fails the next attempt cleanly.
		q.requeueOrBury(j, now)
		out = append(out, j)
	}
	return out
}

// requeueOrBury applies the retry budget: under it, the job requeues
// with exponential backoff + seeded jitter; over it, the job (and any
// followers) dead-letters. Reports whether the job was requeued.
func (q *Queue) requeueOrBury(j *Job, now int64) bool {
	// The fencing token stays burned; the next claim mints a new one, so
	// any report from this attempt is stale from here on.
	j.Retries++
	j.Worker = ""
	j.LeaseExpiry = 0
	j.PreemptRequested = false
	if j.Retries > q.cfg.MaxRetries {
		q.bury(j)
		return false
	}
	q.counts.Retries++
	j.State = Queued
	j.NotBefore = now + q.backoff(j)
	return true
}

// bury dead-letters the job and every follower coalesced onto it.
func (q *Queue) bury(j *Job) {
	j.State = Dead
	q.resident--
	q.counts.DeadLetters++
	for _, f := range q.followers(j.ID) {
		f.State = Dead
		f.LastError = fmt.Sprintf("coalesced primary %s dead-lettered: %s", j.ID, j.LastError)
		q.resident--
		q.counts.DeadLetters++
	}
}

// backoff computes the delay before the job's next attempt:
// Backoff × 2^(retries-1), capped at MaxBackoff, plus a deterministic
// jitter in [0, backoff/2) hashed from (Seed, job ID, retry count) —
// seeded spread without a shared RNG.
func (q *Queue) backoff(j *Job) int64 {
	if q.cfg.Backoff <= 0 {
		return 0
	}
	d := q.cfg.Backoff
	for i := 1; i < j.Retries && d < q.cfg.maxBackoff(); i++ {
		d <<= 1
	}
	if m := q.cfg.maxBackoff(); d > m {
		d = m
	}
	if half := d / 2; half > 0 {
		d += int64(jitterHash(q.cfg.Seed, j.ID, j.Retries) % uint64(half))
	}
	return d
}

// jitterHash is FNV-1a over (seed, id, attempt).
func jitterHash(seed int64, id string, attempt int) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(b byte) { h ^= uint64(b); h *= prime }
	for i := 0; i < 8; i++ {
		mix(byte(uint64(seed) >> (8 * i)))
	}
	for i := 0; i < len(id); i++ {
		mix(id[i])
	}
	for i := 0; i < 8; i++ {
		mix(byte(uint64(attempt) >> (8 * i)))
	}
	return h
}

// NextWake returns the earliest future instant at which time-driven
// work becomes due — a backoff elapsing or a lease expiring — so the
// coordinator can sleep exactly until then (and fake-clock tests can
// step straight there). ok is false when no timer is pending.
func (q *Queue) NextWake(now int64) (at int64, ok bool) {
	for _, id := range q.order {
		j := q.jobs[id]
		var t int64
		switch j.State {
		case Queued:
			if j.CoalescedInto != "" || j.NotBefore <= now {
				continue
			}
			t = j.NotBefore
		case Leased:
			t = j.LeaseExpiry
		case Done, Dead:
			continue
		default:
			continue
		}
		if !ok || t < at {
			at, ok = t, true
		}
	}
	return at, ok
}
