package obs

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace_event export --------------------------------------------

// chromeEvent is one record of the Chrome trace_event JSON format
// (loadable in Perfetto / chrome://tracing). Field order is fixed, so
// the export is byte-deterministic for a deterministic event stream.
type chromeEvent struct {
	Name string      `json:"name"`
	Ph   string      `json:"ph"`
	Cat  string      `json:"cat,omitempty"`
	TS   int64       `json:"ts"`
	PID  int         `json:"pid"`
	TID  int32       `json:"tid"`
	ID   string      `json:"id,omitempty"`
	S    string      `json:"s,omitempty"`
	Args *chromeArgs `json:"args,omitempty"`
}

type chromeArgs struct {
	Name string `json:"name,omitempty"`
	A    string `json:"a,omitempty"`
	B    string `json:"b,omitempty"`
}

// spanCat maps a span-start kind to its async category; the matching
// end kind is start+1 by construction.
var spanCat = map[Kind]string{
	KSaveStart:    "save",
	KRestoreStart: "restore",
	KMigrateStart: "migrate",
	KLocalStart:   "local",
}

var spanEndCat = map[Kind]string{
	KSaveEnd:    "save",
	KRestoreEnd: "restore",
	KMigrateEnd: "migrate",
	KLocalEnd:   "local",
}

// WriteChrome writes the retained events as Chrome trace_event JSON:
// one process per SM plus a "system" process for the fault unit, fill
// unit, CPU fault service and local handler; warp identity as the
// thread id; the simulated cycle as the timestamp (1 "us" = 1 cycle).
// Point events are instants; save/restore/migrate/local pairs are async
// spans keyed by their block or region id.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	events := t.Events()
	sysPID := len(t.rings) - 1 // SMs are PIDs 0..n-1; the system row follows

	out := make([]chromeEvent, 0, len(events)+len(t.rings))
	for i := 0; i < len(t.rings); i++ {
		name := "system"
		pid := sysPID
		if i > 0 {
			name = fmt.Sprintf("SM%d", i-1)
			pid = i - 1
		}
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: &chromeArgs{Name: name},
		})
	}
	for _, e := range events {
		pid := sysPID
		if e.SM >= 0 {
			pid = int(e.SM)
		}
		ce := chromeEvent{
			Name: e.Kind.String(),
			TS:   e.Cycle,
			PID:  pid,
			TID:  e.Warp,
			Args: &chromeArgs{A: fmt.Sprintf("%#x", e.A), B: fmt.Sprintf("%#x", e.B)},
		}
		switch {
		case spanCat[e.Kind] != "":
			ce.Ph = "b"
			ce.Cat = spanCat[e.Kind]
			ce.ID = spanID(ce.Cat, pid, e.A)
		case spanEndCat[e.Kind] != "":
			ce.Ph = "e"
			ce.Cat = spanEndCat[e.Kind]
			ce.ID = spanID(ce.Cat, pid, e.A)
		default:
			ce.Ph = "i"
			ce.S = "t"
		}
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{out})
}

// spanID builds the async-span correlation id: category plus emitting
// process plus the block/region id, so concurrent spans never collide.
func spanID(cat string, pid int, a uint64) string {
	return fmt.Sprintf("%s:%d:%#x", cat, pid, a)
}

// Binary export ---------------------------------------------------------

// binaryMagic heads the compact binary trace format; the trailing digit
// is the format version.
var binaryMagic = [8]byte{'G', 'P', 'U', 'E', 'S', 'T', 'R', '1'}

// binaryRecordSize is the fixed little-endian record width:
// cycle(8) seq(8) a(8) b(8) warp(4) sm(2) kind(1).
const binaryRecordSize = 39

// WriteBinary writes the retained events in the compact binary format:
// the 8-byte magic "GPUESTR1" followed by fixed-width little-endian
// records in emission order.
func (t *Tracer) WriteBinary(w io.Writer) error {
	if _, err := w.Write(binaryMagic[:]); err != nil {
		return err
	}
	var buf [binaryRecordSize]byte
	for _, e := range t.Events() {
		binary.LittleEndian.PutUint64(buf[0:], uint64(e.Cycle))
		binary.LittleEndian.PutUint64(buf[8:], e.Seq)
		binary.LittleEndian.PutUint64(buf[16:], e.A)
		binary.LittleEndian.PutUint64(buf[24:], e.B)
		binary.LittleEndian.PutUint32(buf[32:], uint32(e.Warp))
		binary.LittleEndian.PutUint16(buf[36:], uint16(e.SM))
		buf[38] = byte(e.Kind)
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

// ReadBinary decodes a binary trace written by WriteBinary.
func ReadBinary(r io.Reader) ([]Event, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("obs: reading trace magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("obs: bad trace magic %q", magic[:])
	}
	var out []Event
	var buf [binaryRecordSize]byte
	for {
		_, err := io.ReadFull(r, buf[:])
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("obs: truncated trace record: %w", err)
		}
		out = append(out, Event{
			Cycle: int64(binary.LittleEndian.Uint64(buf[0:])),
			Seq:   binary.LittleEndian.Uint64(buf[8:]),
			A:     binary.LittleEndian.Uint64(buf[16:]),
			B:     binary.LittleEndian.Uint64(buf[24:]),
			Warp:  int32(binary.LittleEndian.Uint32(buf[32:])),
			SM:    int16(binary.LittleEndian.Uint16(buf[36:])),
			Kind:  Kind(buf[38]),
		})
	}
}
