package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"gpues/internal/config"
	"gpues/internal/obs"
	"gpues/internal/vm"
)

// switchingConfig is the heaviest observable scenario: demand paging
// with block switching under the replay-queue scheme, exercising the
// full fault lifecycle (raise, merge, migrate, switch, replay).
func switchingConfig() config.Config {
	cfg := config.Default()
	cfg.Scheme = config.ReplayQueue
	cfg.DemandPaging = true
	cfg.Scheduler.Enabled = true
	return cfg
}

// tracedRun runs the spec with a tracer attached and returns both.
func tracedRun(t *testing.T, cfg config.Config, spec LaunchSpec, o obs.Options) (*Result, *obs.Tracer) {
	t.Helper()
	s, err := New(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New(o)
	s.AttachTracer(tr)
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r, tr
}

// TestTraceCyclesUnchanged is the core tracing invariant: attaching a
// tracer must not perturb timing. The tracer never schedules clock
// events, so a traced run and an untraced run of the same spec must
// report bit-identical cycles, commits, and stall breakdowns.
func TestTraceCyclesUnchanged(t *testing.T) {
	cfg := switchingConfig()
	base, err := RunSpec(cfg, testSpec(t, 32, 128, vm.RegionCPUInit, vm.RegionGPUInit))
	if err != nil {
		t.Fatal(err)
	}
	traced, tr := tracedRun(t, cfg, testSpec(t, 32, 128, vm.RegionCPUInit, vm.RegionGPUInit), obs.Options{})
	if traced.Cycles != base.Cycles {
		t.Errorf("traced run took %d cycles, untraced %d", traced.Cycles, base.Cycles)
	}
	if traced.Committed != base.Committed {
		t.Errorf("traced committed = %d, untraced %d", traced.Committed, base.Committed)
	}
	if traced.Stalls != base.Stalls {
		t.Errorf("stall breakdown diverged:\ntraced:   %v\nuntraced: %v", traced.Stalls, base.Stalls)
	}
	if len(tr.Events()) == 0 {
		t.Fatal("traced run recorded no events")
	}
}

// TestTraceDeterminism: two runs of the same seedless, deterministic
// simulation must render byte-identical Chrome traces and metric
// snapshots — the property CI diffs rely on.
func TestTraceDeterminism(t *testing.T) {
	render := func() (string, string) {
		r, tr := tracedRun(t, switchingConfig(),
			testSpec(t, 16, 128, vm.RegionCPUInit, vm.RegionGPUInit), obs.Options{})
		var chrome, metrics bytes.Buffer
		if err := tr.WriteChrome(&chrome); err != nil {
			t.Fatal(err)
		}
		if err := r.Metrics.WriteJSON(&metrics); err != nil {
			t.Fatal(err)
		}
		return chrome.String(), metrics.String()
	}
	c1, m1 := render()
	c2, m2 := render()
	if c1 != c2 {
		t.Error("Chrome trace output differs between identical runs")
	}
	if m1 != m2 {
		t.Errorf("metrics snapshots differ between identical runs:\n%s\nvs\n%s", m1, m2)
	}
}

// TestTraceFaultLifecycle runs a demand-paging + switching workload and
// checks the trace contains at least one complete fault lifecycle:
// raise at the SM, region merge at the fault unit, CPU migration,
// resolution back at the warp, and the squash/replay of the faulting
// instruction. The exported Chrome trace must be valid JSON.
func TestTraceFaultLifecycle(t *testing.T) {
	cfg := switchingConfig()
	res, tr := tracedRun(t, cfg, testSpec(t, 64, 128, vm.RegionCPUInit, vm.RegionGPUInit), obs.Options{})
	seen := map[obs.Kind]int{}
	for _, ev := range tr.Events() {
		seen[ev.Kind]++
	}
	for _, k := range []obs.Kind{
		obs.KWalkFault, obs.KFaultRaised, obs.KRegionQueued,
		obs.KMigrateStart, obs.KMigrateEnd, obs.KRegionResolved,
		obs.KFaultResolved, obs.KSquash, obs.KReplayFetch, obs.KReplayCommit,
	} {
		if seen[k] == 0 {
			t.Errorf("no %v events in a demand-paging trace", k)
		}
	}
	// Block switching events only when the run actually switched.
	var out int64
	for _, st := range res.SMs {
		out += st.SwitchesOut
	}
	if out > 0 {
		for _, k := range []obs.Kind{obs.KSwitchOut, obs.KSaveStart, obs.KSaveEnd} {
			if seen[k] == 0 {
				t.Errorf("%d blocks switched out but no %v events", out, k)
			}
		}
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) <= len(tr.Events()) {
		// Every recorded event plus the process-name metadata rows.
		t.Errorf("chrome export has %d rows for %d events", len(doc.TraceEvents), len(tr.Events()))
	}

	if h, ok := res.Metrics.Histograms["fault.latency_cycles"]; !ok || h.Count == 0 {
		t.Error("fault.latency_cycles histogram empty after a faulting run")
	}
	if res.Stalls[obs.StallFaultWait] == 0 {
		t.Error("no fault-wait stall cycles attributed in a faulting run")
	}
}

// TestTraceFilterLimitsKinds: a fault-group filter must keep pipeline
// noise out of the ring so the flight recorder survives long runs.
func TestTraceFilterLimitsKinds(t *testing.T) {
	mask, err := obs.ParseFilter("fault,migrate")
	if err != nil {
		t.Fatal(err)
	}
	_, tr := tracedRun(t, switchingConfig(),
		testSpec(t, 16, 128, vm.RegionCPUInit, vm.RegionGPUInit), obs.Options{Filter: mask})
	events := tr.Events()
	if len(events) == 0 {
		t.Fatal("filtered trace is empty")
	}
	for _, ev := range events {
		switch ev.Kind {
		case obs.KSquash, obs.KFaultRaised, obs.KFaultResolved, obs.KRegionQueued,
			obs.KRegionResolved, obs.KWalkFault, obs.KMigrateStart, obs.KMigrateEnd:
		default:
			t.Fatalf("event kind %v leaked through filter %q", ev.Kind, "fault,migrate")
		}
	}
}
