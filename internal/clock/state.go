package clock

import (
	"fmt"
	"sort"

	"gpues/internal/ckpt"
)

// SaveState serializes the queue's checkpointable view: the clock
// itself plus a structural summary of the pending event population.
// Event callbacks are closures and cannot be serialized; restore
// rebuilds them by deterministic replay, and the summary written here
// — total count, overdue count, and the per-cycle pending counts in
// ascending cycle order — is what the replay is verified against.
func (q *Queue) SaveState(w *ckpt.Writer) {
	w.I64(q.now)
	w.U64(q.seq)
	w.Int(q.n)

	overdue := 0
	for nd := q.overdue.head; nd != nil; nd = nd.next {
		overdue++
	}
	w.Int(overdue)

	// Per-cycle counts: the ring holds cycles [now, now+numBuckets); a
	// bucket's nodes all share one cycle, so walking buckets in cycle
	// order (starting at now's slot) yields ascending cycles. Overflow
	// events live at now+numBuckets or later.
	counts := make(map[int64]int)
	for i := int64(0); i < numBuckets; i++ {
		c := q.now + i
		for nd := q.buckets[int(c)&bucketMask].head; nd != nil; nd = nd.next {
			counts[nd.cycle]++
		}
	}
	for _, nd := range q.overflow {
		counts[nd.cycle]++
	}
	cycles := make([]int64, 0, len(counts))
	for c := range counts {
		cycles = append(cycles, c)
	}
	sort.Slice(cycles, func(i, j int) bool { return cycles[i] < cycles[j] })
	w.Int(len(cycles))
	for _, c := range cycles {
		w.I64(c - q.now) // relative, so equal schedules digest equally
		w.Int(counts[c])
	}
}

// RestoreState consumes the field stream written by SaveState. The
// event population itself is rebuilt by replay before restore runs, so
// this only cross-checks the clock position and pending-event count —
// a mismatch means the replay was not deterministic.
func (q *Queue) RestoreState(r *ckpt.Reader) error {
	now := r.I64()
	seq := r.U64()
	n := r.Int()
	overdue := r.Int()
	_ = overdue
	pendingCycles := r.Int()
	for i := 0; i < pendingCycles; i++ {
		r.I64()
		r.Int()
	}
	if err := r.Err(); err != nil {
		return err
	}
	if now != q.now || n != q.n {
		return fmt.Errorf("clock: replayed state (cycle %d, %d events) does not match checkpoint (cycle %d, %d events)",
			q.now, q.n, now, n)
	}
	if seq != q.seq {
		return fmt.Errorf("clock: replayed event sequence %d does not match checkpoint %d", q.seq, seq)
	}
	return nil
}
