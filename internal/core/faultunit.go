// Package core implements the paper's system-level exception support:
// the global pending-fault queue maintained by the fill unit, the
// routing of faults to the CPU driver or to the GPU-local handler
// (Section 4.2), and the GPU-resident fault handler itself with its
// per-SM partitioned physical allocators.
//
// The pipeline-level parts of the contribution — warp disable, the
// replay queue, the operand log, squash and replay — live in the SM
// model (internal/sm); this package is the layer that makes a detected
// fault actually get resolved.
package core

import (
	"fmt"

	"gpues/internal/clock"
	"gpues/internal/obs"
	"gpues/internal/vm"
)

// Resolver resolves one fault handling region; done runs when the
// region's pages are mapped on the GPU. host.FaultService implements it
// for the CPU path; LocalHandler for the GPU path.
type Resolver interface {
	Service(regionBase uint64, kind vm.FaultKind, smID int, done func())
}

// Stats counts fault unit activity.
type Stats struct {
	Raised      int64 // faults raised by SMs (page granularity)
	Regions     int64 // distinct handling regions serviced
	Merged      int64 // faults merged into an in-flight region
	RoutedCPU   int64
	RoutedLocal int64
	// MaxQueue is the high-water mark of the pending fault queue.
	MaxQueue int
}

type regionFault struct {
	pos     int
	born    int64 // cycle the region entered the pending queue
	waiters []func()
}

// FaultUnit is the global fault coordinator attached to the fill unit:
// it merges page faults into 64 KB handling regions (Section 5.1),
// tracks the global pending fault queue whose positions drive the local
// scheduler's switch decisions, and routes each region to the CPU
// driver or the GPU-local handler.
type FaultUnit struct {
	//simlint:ckptskip wiring to the shared event queue, rebuilt by the harness before restore
	q *clock.Queue
	//simlint:ckptskip construction-time region granularity (Section 5.1: 64 KB), fixed for the life of the unit
	gran uint64
	//simlint:ckptskip wiring to the CPU driver resolver, rebuilt by the harness before restore
	cpu Resolver
	//simlint:ckptskip wiring to the GPU-local resolver, rebuilt by the harness before restore
	local Resolver // nil when use case 2 is disabled

	pending map[uint64]*regionFault
	queued  int
	stats   Stats
	//simlint:ckptskip a non-nil abort ends the run before any checkpoint is cut
	abort error

	//simlint:ckptskip tracer wiring; trace emission is observability, not simulation state
	tr *obs.Tracer
	//simlint:ckptskip wiring to a shared instrument; the obs registry checkpoints it as its own section
	latency *obs.Histogram // region service latency, queue entry to resolution
}

// SetTracer installs the event tracer; nil disables tracing.
func (u *FaultUnit) SetTracer(tr *obs.Tracer) { u.tr = tr }

// SetLatency installs the fault-service-latency histogram; nil disables.
func (u *FaultUnit) SetLatency(h *obs.Histogram) { u.latency = h }

// RegisterMetrics exposes the fault unit's counters as gauges.
func (u *FaultUnit) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.Gauge(prefix+".raised", func() int64 { return u.stats.Raised })
	reg.Gauge(prefix+".regions", func() int64 { return u.stats.Regions })
	reg.Gauge(prefix+".merged", func() int64 { return u.stats.Merged })
	reg.Gauge(prefix+".routed_cpu", func() int64 { return u.stats.RoutedCPU })
	reg.Gauge(prefix+".routed_local", func() int64 { return u.stats.RoutedLocal })
	reg.Gauge(prefix+".max_queue", func() int64 { return int64(u.stats.MaxQueue) })
}

// NewFaultUnit builds the fault unit. local may be nil.
func NewFaultUnit(q *clock.Queue, granularity int, cpu Resolver, local Resolver) (*FaultUnit, error) {
	if granularity <= 0 || granularity&(granularity-1) != 0 {
		return nil, fmt.Errorf("core: fault granularity %d not a power of two", granularity)
	}
	if cpu == nil {
		return nil, fmt.Errorf("core: fault unit needs the CPU resolver")
	}
	return &FaultUnit{
		q:       q,
		gran:    uint64(granularity),
		cpu:     cpu,
		local:   local,
		pending: make(map[uint64]*regionFault),
	}, nil
}

// Stats returns a copy of the counters.
func (u *FaultUnit) Stats() Stats { return u.stats }

// Pending returns the current pending fault queue length.
func (u *FaultUnit) Pending() int { return u.queued }

// Err returns the abort condition, if an invalid access was raised.
func (u *FaultUnit) Err() error { return u.abort }

// RaiseFault implements sm.FaultSink: it registers a page fault,
// returning its position in the global pending fault queue. Faults to a
// region already being handled merge and share its position.
func (u *FaultUnit) RaiseFault(pageVA uint64, kind vm.FaultKind, smID int, resolved func()) int {
	u.stats.Raised++
	if kind == vm.FaultInvalid {
		// The handler requests the CPU to abort the kernel (Section
		// 4.2); the simulation surfaces it as an error.
		if u.abort == nil {
			u.abort = fmt.Errorf("core: invalid memory access at %#x (SM %d): kernel aborted", pageVA, smID)
		}
		return u.queued
	}
	region := pageVA &^ (u.gran - 1)
	if rf, ok := u.pending[region]; ok {
		u.stats.Merged++
		rf.waiters = append(rf.waiters, resolved)
		return rf.pos
	}
	rf := &regionFault{pos: u.queued, born: u.q.Now(), waiters: []func(){resolved}}
	u.pending[region] = rf
	u.queued++
	if u.queued > u.stats.MaxQueue {
		u.stats.MaxQueue = u.queued
	}
	u.stats.Regions++
	if u.tr != nil {
		u.tr.Emit(-1, obs.KRegionQueued, int32(smID), region, uint64(rf.pos))
	}

	complete := func() {
		delete(u.pending, region)
		u.queued--
		wait := u.q.Now() - rf.born
		u.latency.Observe(wait)
		if u.tr != nil {
			u.tr.Emit(-1, obs.KRegionResolved, int32(smID), region, uint64(wait))
		}
		for _, w := range rf.waiters {
			w()
		}
	}
	// Route: first-touch (allocation-only) faults can be handled on the
	// GPU itself when local handling is enabled; migrations and
	// everything else go to the CPU driver.
	if kind == vm.FaultAllocOnly && u.local != nil {
		u.stats.RoutedLocal++
		u.local.Service(region, kind, smID, complete)
	} else {
		u.stats.RoutedCPU++
		u.cpu.Service(region, kind, smID, complete)
	}
	return rf.pos
}
