package vm

import (
	"fmt"

	"gpues/internal/ckpt"
)

// SaveState serializes the allocator: the fresh-frame cursor, the
// allocation count and the free list in its insertion order (which is
// deterministic — frames are only freed by simulated events).
func (a *PhysAllocator) SaveState(w *ckpt.Writer) {
	w.U64(a.base)
	w.U64(a.frameSize)
	w.U64(a.limit)
	w.U64(a.nextFresh)
	w.Int(a.allocated)
	w.Int(len(a.free))
	for _, f := range a.free {
		w.U64(f)
	}
}

// RestoreState reads the SaveState stream back and installs it.
func (a *PhysAllocator) RestoreState(r *ckpt.Reader) error {
	base := r.U64()
	frame := r.U64()
	limit := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if base != a.base || frame != a.frameSize || limit != a.limit {
		return fmt.Errorf("vm: allocator range [%#x,%#x)/%d does not match checkpoint [%#x,%#x)/%d",
			a.base, a.limit, a.frameSize, base, limit, frame)
	}
	a.nextFresh = r.U64()
	a.allocated = r.Int()
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	a.free = a.free[:0]
	for i := 0; i < n; i++ {
		a.free = append(a.free, r.U64())
	}
	return r.Err()
}

// Walk visits every leaf entry of the table in ascending virtual
// address order — the radix structure makes index order address order,
// so iteration is deterministic without sorting.
func (pt *PageTable) Walk(fn func(va uint64, e PTE)) {
	pt.walkNode(&pt.root, 0, 0, fn)
}

func (pt *PageTable) walkNode(n *ptNode, level int, vpn uint64, fn func(va uint64, e PTE)) {
	if level == numLevels-1 {
		for i := range n.entries {
			e := n.entries[i]
			if e.State == PageUnmapped && e.PA == 0 && !e.Dirty {
				continue
			}
			fn(((vpn<<levelBits)|uint64(i))<<pt.pageBits, e)
		}
		return
	}
	for i, c := range n.children {
		if c != nil {
			pt.walkNode(c, level+1, (vpn<<levelBits)|uint64(i), fn)
		}
	}
}

// digest folds every live entry (VA, state, frame, dirty bit) into one
// fingerprint. Tables can map millions of pages, so checkpoints carry
// this digest plus the mapped count instead of the full table; the
// table itself is rebuilt by replay on restore.
func (pt *PageTable) digest() uint64 {
	h := ckpt.NewHasher()
	pt.Walk(func(va uint64, e PTE) {
		h.U64(va)
		h.U64(uint64(e.State))
		h.U64(e.PA)
		if e.Dirty {
			h.U64(1)
		} else {
			h.U64(0)
		}
	})
	return h.Sum()
}

// SaveState serializes the address space: both page tables (mapped
// count + content digest), both physical allocators and the registered
// regions.
func (as *AddressSpace) SaveState(w *ckpt.Writer) {
	w.Int(as.GPUTable.MappedPages())
	w.U64(as.GPUTable.digest())
	w.Int(as.CPUTable.MappedPages())
	w.U64(as.CPUTable.digest())
	as.GPUPhys.SaveState(w)
	as.CPUPhys.SaveState(w)
	w.Int(len(as.regions))
	for i := range as.regions {
		reg := &as.regions[i]
		w.String(reg.Name)
		w.U64(reg.Base)
		w.U64(reg.Size)
		w.U64(uint64(reg.Kind))
	}
}

// RestoreState reads the SaveState stream back. The page tables are
// rebuilt by replay, so their digests are cross-checked rather than
// installed; the allocators install their serialized state.
func (as *AddressSpace) RestoreState(r *ckpt.Reader) error {
	gpuMapped, gpuDigest := r.Int(), r.U64()
	cpuMapped, cpuDigest := r.Int(), r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if gpuMapped != as.GPUTable.MappedPages() || gpuDigest != as.GPUTable.digest() {
		return fmt.Errorf("vm: replayed GPU page table (%d pages, %#016x) does not match checkpoint (%d pages, %#016x)",
			as.GPUTable.MappedPages(), as.GPUTable.digest(), gpuMapped, gpuDigest)
	}
	if cpuMapped != as.CPUTable.MappedPages() || cpuDigest != as.CPUTable.digest() {
		return fmt.Errorf("vm: replayed CPU page table (%d pages, %#016x) does not match checkpoint (%d pages, %#016x)",
			as.CPUTable.MappedPages(), as.CPUTable.digest(), cpuMapped, cpuDigest)
	}
	if err := as.GPUPhys.RestoreState(r); err != nil {
		return err
	}
	if err := as.CPUPhys.RestoreState(r); err != nil {
		return err
	}
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(as.regions) {
		return fmt.Errorf("vm: %d regions, checkpoint has %d", len(as.regions), n)
	}
	for i := 0; i < n; i++ {
		name, base := r.String(), r.U64()
		r.U64()
		r.U64()
		if name != as.regions[i].Name || base != as.regions[i].Base {
			return fmt.Errorf("vm: region %d is %s@%#x, checkpoint has %s@%#x",
				i, as.regions[i].Name, as.regions[i].Base, name, base)
		}
	}
	return r.Err()
}
