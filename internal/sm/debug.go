package sm

import (
	"fmt"
	"strings"
)

// This file implements the SM's diagnostic surface: structured
// snapshots for the simulator's stall reports and structural invariant
// checks for the chaos harness. Neither is on any hot path.

// String names the block state.
func (st blockState) String() string {
	switch st {
	case blockActive:
		return "active"
	case blockDraining:
		return "draining"
	case blockSaving:
		return "saving"
	case blockOffChip:
		return "off-chip"
	case blockRestoring:
		return "restoring"
	}
	return fmt.Sprintf("blockState(%d)", uint8(st))
}

// String names the fetch-disable reason.
func (r fetchReason) String() string {
	switch r {
	case fetchOK:
		return "ok"
	case fetchControl:
		return "control"
	case fetchWarpDisable:
		return "warp-disable"
	}
	return fmt.Sprintf("fetchReason(%d)", uint8(r))
}

// WarpSnapshot is the diagnostic state of one resident warp.
type WarpSnapshot struct {
	Index             int
	Done              bool
	Cursor            int
	TraceLen          int
	ReplayQueue       int // squashed instructions awaiting replay
	Buffered          bool
	FetchBlock        string
	InFlight          int
	AtBarrier         bool
	FaultsOutstanding int
}

// BlockSnapshot is the diagnostic state of one assigned block.
type BlockSnapshot struct {
	ID            int
	Slot          int // -1 when off-chip
	State         string
	LiveWarps     int
	BarrierCount  int
	LogUsed       int
	PendingFaults int
	// Excepted marks a block squashed by preemptible exception delivery.
	Excepted bool
	Warps    []WarpSnapshot
}

// Snapshot is the diagnostic state of one SM, captured for stall
// reports.
type Snapshot struct {
	ID         int
	Idle       bool
	Assigned   int
	OffChip    int
	L1MSHRs    int
	L1TLBMSHRs int
	Blocks     []BlockSnapshot
}

// String renders the snapshot compactly, one block per line.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SM %d: %d blocks (%d off-chip), idle=%v, L1 MSHRs=%d, L1TLB MSHRs=%d",
		s.ID, s.Assigned, s.OffChip, s.Idle, s.L1MSHRs, s.L1TLBMSHRs)
	for _, blk := range s.Blocks {
		fmt.Fprintf(&b, "\n  block %d [%s] slot=%d live=%d barrier=%d log=%d faults=%d",
			blk.ID, blk.State, blk.Slot, blk.LiveWarps, blk.BarrierCount, blk.LogUsed, blk.PendingFaults)
		if blk.Excepted {
			b.WriteString(" excepted")
		}
		for _, w := range blk.Warps {
			if w.Done {
				continue
			}
			fmt.Fprintf(&b, "\n    warp %d: pc=%d/%d replay=%d buf=%v fetch=%s inflight=%d barrier=%v faults=%d",
				w.Index, w.Cursor, w.TraceLen, w.ReplayQueue, w.Buffered, w.FetchBlock,
				w.InFlight, w.AtBarrier, w.FaultsOutstanding)
		}
	}
	return b.String()
}

func snapshotWarp(w *warpRT) WarpSnapshot {
	return WarpSnapshot{
		Index:             w.idx,
		Done:              w.done,
		Cursor:            w.cursor,
		TraceLen:          len(w.trace),
		ReplayQueue:       len(w.replay),
		Buffered:          w.buf != nil,
		FetchBlock:        w.fetchBlock.String(),
		InFlight:          w.inFlight,
		AtBarrier:         w.atBarrier,
		FaultsOutstanding: w.faultsOutstanding,
	}
}

func snapshotBlock(b *blockRT) BlockSnapshot {
	bs := BlockSnapshot{
		ID:            b.id,
		Slot:          b.slot,
		State:         b.state.String(),
		LiveWarps:     b.liveWarps,
		BarrierCount:  b.barrierCount,
		LogUsed:       b.logUsed,
		PendingFaults: b.pendingFaults,
		Excepted:      b.excepted,
	}
	for _, w := range b.warps {
		bs.Warps = append(bs.Warps, snapshotWarp(w))
	}
	return bs
}

// Snapshot captures the SM's diagnostic state.
func (s *SM) Snapshot() Snapshot {
	snap := Snapshot{
		ID:       s.ID,
		Idle:     s.idle,
		Assigned: s.assigned,
		OffChip:  len(s.offchip),
	}
	if s.l1 != nil {
		snap.L1MSHRs = s.l1.InFlight()
	}
	if s.l1tlb != nil {
		snap.L1TLBMSHRs = s.l1tlb.InFlight()
	}
	for _, b := range s.slots {
		if b != nil {
			snap.Blocks = append(snap.Blocks, snapshotBlock(b))
		}
	}
	for _, b := range s.offchip {
		snap.Blocks = append(snap.Blocks, snapshotBlock(b))
	}
	return snap
}

// AssignedBlocks returns the number of blocks this SM owns in any state
// (resident or switched out) — the SM's term of the simulator's block
// conservation invariant.
func (s *SM) AssignedBlocks() int { return s.assigned }

// CheckInvariants validates the SM's structural state, returning one
// message per violation. maxMSHRAge bounds how long an L1 cache or L1
// TLB miss may stay outstanding (0 disables the age check).
func (s *SM) CheckInvariants(now, maxMSHRAge int64) []string {
	var v []string
	bad := func(format string, args ...any) {
		v = append(v, fmt.Sprintf("SM %d: ", s.ID)+fmt.Sprintf(format, args...))
	}

	// Slot bookkeeping: assigned must equal resident plus off-chip
	// blocks, and every resident block must know its slot.
	resident := 0
	for slot, b := range s.slots {
		if b == nil {
			continue
		}
		resident++
		if b.slot != slot {
			bad("block %d in slot %d records slot %d", b.id, slot, b.slot)
		}
		if b.state == blockOffChip {
			bad("block %d occupies slot %d but is marked off-chip", b.id, slot)
		}
	}
	for _, b := range s.offchip {
		if b.state != blockOffChip && b.state != blockSaving {
			bad("off-chip list holds block %d in state %s", b.id, b.state)
		}
	}
	if got := resident + len(s.offchip); s.assigned != got {
		bad("assigned=%d but %d resident + %d off-chip", s.assigned, resident, len(s.offchip))
	}

	check := func(b *blockRT) {
		live, faults := 0, 0
		for _, w := range b.warps {
			if !w.done {
				live++
			}
			if w.inFlight < 0 {
				bad("block %d warp %d has negative in-flight count %d", b.id, w.idx, w.inFlight)
			}
			if w.faultsOutstanding < 0 {
				bad("block %d warp %d has negative outstanding faults %d", b.id, w.idx, w.faultsOutstanding)
			}
			faults += w.faultsOutstanding
			if w.atBarrier && w.inFlight < 1 {
				bad("block %d warp %d parked at barrier with no in-flight instruction", b.id, w.idx)
			}
			// A quiescent warp may hold no scoreboard state: every
			// pendWrite bit and pendRead count must have an owner.
			if w.inFlight == 0 && w.buf == nil && len(w.heldSrcs) == 0 {
				for i, bits := range w.pendWrite {
					if bits != 0 {
						bad("block %d warp %d quiescent with pendWrite[%d]=%#x", b.id, w.idx, i, bits)
					}
				}
				for r, n := range w.pendRead {
					if n != 0 {
						bad("block %d warp %d quiescent with pendRead[r%d]=%d", b.id, w.idx, r, n)
					}
				}
			}
		}
		if b.liveWarps != live {
			bad("block %d records %d live warps, counted %d", b.id, b.liveWarps, live)
		}
		if b.barrierCount < 0 || b.barrierCount > live {
			bad("block %d barrier count %d outside [0,%d]", b.id, b.barrierCount, live)
		}
		if b.pendingFaults != faults {
			bad("block %d records %d pending faults, warps hold %d", b.id, b.pendingFaults, faults)
		}
		if b.logUsed < 0 || (s.logPerBlock > 0 && b.logUsed > s.logPerBlock) {
			bad("block %d operand log occupancy %d outside [0,%d]", b.id, b.logUsed, s.logPerBlock)
		}
	}
	for _, b := range s.slots {
		if b != nil {
			check(b)
		}
	}
	for _, b := range s.offchip {
		check(b)
	}

	if s.l1 != nil {
		v = append(v, s.l1.CheckInvariants(now, maxMSHRAge)...)
	}
	if s.l1tlb != nil {
		v = append(v, s.l1tlb.CheckInvariants(now, maxMSHRAge)...)
	}
	return v
}
