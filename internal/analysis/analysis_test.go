package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestParseReleases(t *testing.T) {
	if s, err := ParseReleases("recv"); err != nil || s.Arg != -1 {
		t.Errorf("recv: got %+v, %v", s, err)
	}
	if s, err := ParseReleases("2"); err != nil || s.Arg != 2 {
		t.Errorf("2: got %+v, %v", s, err)
	}
	for _, bad := range []string{"", "-1", "x", "0 extra"} {
		if _, err := ParseReleases(bad); err == nil {
			t.Errorf("ParseReleases(%q): expected error", bad)
		}
	}
}

func TestSuppressions(t *testing.T) {
	const src = `package p

func f() {
	_ = 1 //simlint:ignore detX because reasons
	_ = 2
	//simlint:ignore detY missing analyzer line applies below
	_ = 3
	//simlint:ignore detZ
	_ = 4
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	s := BuildSuppressions(fset, []*ast.File{f})
	at := func(name string, line int) bool {
		return s[suppressionKey{"p.go", line, name}]
	}
	if !at("detX", 4) || !at("detX", 5) {
		t.Error("end-of-line directive should cover its line and the next")
	}
	if !at("detY", 7) {
		t.Error("line-above directive should cover the following line")
	}
	if at("detZ", 8) || at("detZ", 9) {
		t.Error("reasonless directive must suppress nothing")
	}
}
