package sim

import (
	"errors"
	"strings"
	"testing"

	"gpues/internal/config"
	"gpues/internal/vm"
)

func TestWatchdogObserve(t *testing.T) {
	w := &watchdog{window: 100, lastSig: -1}
	if w.observe(0, 5) {
		t.Fatal("first observation read as stall")
	}
	if w.observe(99, 5) {
		t.Fatal("fired before the window expired")
	}
	if !w.observe(100, 5) {
		t.Fatal("did not fire once the window expired")
	}
	if w.observe(150, 6) {
		t.Fatal("new signature must reset the window")
	}
	if w.observe(249, 6) {
		t.Fatal("window not measured from the last signature change")
	}
}

// stallAll vetoes every global-memory issue: a clean livelock the
// watchdog must convert into a structured report.
type stallAll struct{}

func (stallAll) StallIssue(int, bool) bool { return true }
func (stallAll) ForceSwitch(int) bool      { return false }

func TestWatchdogConvertsLivelock(t *testing.T) {
	cfg := config.Default()
	cfg.ProgressWindow = 50_000
	s, err := New(cfg, testSpec(t, 4, 128, vm.RegionGPUInit, vm.RegionGPUInit))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range s.sms {
		m.SetChaos(stallAll{})
	}
	_, err = s.Run()
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("livelock returned %v, want *StallError", err)
	}
	if se.Report.Reason != "watchdog" {
		t.Errorf("reason = %q, want watchdog", se.Report.Reason)
	}
	if se.Report.Window != 50_000 {
		t.Errorf("report window = %d, want 50000", se.Report.Window)
	}
	// The whole point: livelock surfaces orders of magnitude before the
	// hard cycle bound.
	if se.Report.Cycle > DefaultMaxCycles/100 {
		t.Errorf("watchdog fired at cycle %d, later than MaxCycles/100", se.Report.Cycle)
	}
	if !strings.Contains(err.Error(), "stall report (watchdog)") {
		t.Errorf("error does not carry the report: %v", err)
	}
	// The stalled SMs must appear in the report.
	if len(se.Report.SMs) == 0 {
		t.Error("report has no SM snapshots")
	}
}

func TestMaxCyclesConfigurable(t *testing.T) {
	cfg := config.Default()
	cfg.MaxCycles = 1_000
	cfg.ProgressWindow = -1 // isolate the hard bound from the watchdog
	_, err := RunSpec(cfg, testSpec(t, 32, 128, vm.RegionGPUInit, vm.RegionGPUInit))
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("run over MaxCycles returned %v, want *StallError", err)
	}
	if se.Report.Reason != "max-cycles" {
		t.Errorf("reason = %q, want max-cycles", se.Report.Reason)
	}
	if se.Report.Cycle < 1_000 {
		t.Errorf("fired at cycle %d, before the bound", se.Report.Cycle)
	}
}

func TestInvariantsCleanAfterRun(t *testing.T) {
	cfg := config.Default()
	cfg.Scheme = config.ReplayQueue
	cfg.DemandPaging = true
	s, err := New(cfg, testSpec(t, 8, 128, vm.RegionCPUInit, vm.RegionGPUInit))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if v := s.CheckInvariants(); len(v) != 0 {
		t.Errorf("invariant violations after a clean run: %v", v)
	}
}
