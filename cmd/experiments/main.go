// Command experiments regenerates the tables and figures of the paper's
// evaluation section.
//
// Examples:
//
//	experiments -run all
//	experiments -run fig10,fig11 -scale 1
//	experiments -run fig12 -scale 2 -progress
//	experiments -run table2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"gpues"
	"gpues/internal/obsrv"
	"gpues/internal/prof"
)

func main() {
	var (
		run       = flag.String("run", "all", "comma-separated: table1, fig10, fig11, table2, fig12, fig13, fig14, scalability, ablations, chaos, resilience, all (chaos and resilience are not part of all)")
		scale     = flag.Int("scale", 0, "dataset scale (0 = per-figure default: 1 for fig10/11/14, 2 for fig12/13)")
		benches   = flag.String("bench", "", "comma-separated benchmark subset (default: the figure's full suite)")
		progress  = flag.Bool("progress", false, "print one line per completed simulation")
		par       = flag.Int("j", 0, "parallel simulations (0 = GOMAXPROCS)")
		asJSON    = flag.Bool("json", false, "emit results as JSON instead of tables")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceDir  = flag.String("trace-dir", "", "write one Chrome trace JSON per simulation into this directory")
		traceFlt  = flag.String("trace-filter", "", "comma-separated event kinds or groups to trace (with -trace-dir); empty records everything")
		resumeDir = flag.String("resume-dir", "", "record finished runs and checkpoint in-flight ones into this directory; re-invoking with the same options resumes a killed campaign")
		ckptEvery = flag.Int64("checkpoint-every", 0, "in-flight checkpoint period in cycles (with -resume-dir; 0 = default)")
		trials    = flag.Int("trials", 0, "seeded trials per resilience-campaign cell (0 = default)")
		excepMode = flag.String("exception-mode", "precise", "exception delivery during resilience trials: precise or preemptible")
		flipSeed  = flag.Int64("flip-seed", 0, "pin the resilience campaign's base flip seed (0 = derive one per cell)")
		flipRate  = flag.Float64("flip-rate", 0, "override the resilience campaign's flip probability in [0,1] (0 = default)")
		protectN  = flag.Int("protect-threads", -1, "pin the resilience campaign's protection to N threads per block (-1 = sweep the built-in ladder)")
		workers   = flag.Int("workers", 1, "tick-phase worker goroutines per simulation (1 = sequential; any count is bit-identical; composes with -j)")
		sampleEv  = flag.Int64("sample-every", 0, "sample every registered metric inside each simulation every N cycles (0 = off)")
		httpAddr  = flag.String("http", "", "serve live campaign progress (/status, /metrics, pprof) on this host:port")
	)
	flag.Parse()

	// Validate flag values before any simulation work: a bad filter must
	// fail fast, not hours into a campaign.
	if *traceFlt != "" {
		if _, err := gpues.ParseTraceFilter(*traceFlt); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	mode, err := gpues.ParseExcepMode(*excepMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *flipRate < 0 || *flipRate > 1 {
		fmt.Fprintf(os.Stderr, "-flip-rate %g outside [0,1]\n", *flipRate)
		os.Exit(2)
	}
	if *protectN < -1 {
		fmt.Fprintf(os.Stderr, "-protect-threads %d must be -1 (sweep) or a non-negative thread count\n", *protectN)
		os.Exit(2)
	}
	if *trials < 0 {
		fmt.Fprintf(os.Stderr, "-trials %d must be non-negative\n", *trials)
		os.Exit(2)
	}
	if *workers < 1 || *workers > runtime.NumCPU() {
		fmt.Fprintf(os.Stderr, "-workers %d out of range [1,%d] (NumCPU)\n", *workers, runtime.NumCPU())
		os.Exit(2)
	}
	if *sampleEv < 0 {
		fmt.Fprintf(os.Stderr, "-sample-every %d must be non-negative (0 = sampling off)\n", *sampleEv)
		os.Exit(2)
	}
	if *httpAddr != "" {
		if err := obsrv.ValidateAddr(*httpAddr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	stopProf, err := prof.StartCPU(*cpuProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	opt := gpues.ExperimentOptions{Scale: *scale, Parallelism: *par,
		Workers: *workers, SampleEvery: *sampleEv,
		TraceDir: *traceDir, TraceFilter: *traceFlt,
		ResumeDir: *resumeDir, CheckpointEvery: *ckptEvery,
		Trials: *trials, FlipSeed: *flipSeed, FlipRate: *flipRate,
		ProtectPin: *protectN >= 0, ProtectThreads: max(*protectN, 0),
		ExcepMode: mode}
	if *httpAddr != "" {
		srv := obsrv.New(*httpAddr)
		bound, err := srv.Start()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "serving http://%s\n", bound)
		defer srv.Close()
		opt.CampaignProgress = srv.SetCampaign
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *benches != "" {
		opt.Benchmarks = strings.Split(*benches, ",")
	}
	if *progress {
		opt.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	want := map[string]bool{}
	for _, r := range strings.Split(*run, ",") {
		want[strings.TrimSpace(r)] = true
	}
	all := want["all"]

	// Per-figure default scales: the pipeline studies converge at scale
	// 1; the use cases need larger datasets for sustained fault streams.
	withScale := func(def int) gpues.ExperimentOptions {
		o := opt
		if o.Scale == 0 {
			o.Scale = def
		}
		return o
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		stopProf()
		os.Exit(1)
	}
	show := func(r *gpues.ExperimentResult) {
		if *asJSON {
			b, err := json.MarshalIndent(r, "", "  ")
			if err != nil {
				fail(err)
			}
			fmt.Println(string(b))
			return
		}
		fmt.Println(r.String())
	}

	if all || want["table1"] {
		fmt.Println(gpues.Table1())
	}
	if all || want["fig10"] {
		r, err := gpues.Figure10(withScale(1))
		if err != nil {
			fail(err)
		}
		show(r)
	}
	if all || want["fig11"] {
		r, err := gpues.Figure11(withScale(1))
		if err != nil {
			fail(err)
		}
		show(r)
	}
	if all || want["table2"] {
		rows, err := gpues.Table2()
		if err != nil {
			fail(err)
		}
		fmt.Println("table2 — Operand logging overheads")
		fmt.Printf("%-8s %10s %10s %10s %10s\n", "log", "SM area", "GPU area", "SM power", "GPU power")
		for _, r := range rows {
			fmt.Printf("%-8s %9.2f%% %9.2f%% %9.2f%% %9.2f%%\n",
				fmt.Sprintf("%d KB", r.LogKB), r.SMAreaPct, r.GPUAreaPct, r.SMPowerPct, r.GPUPowerPct)
		}
		fmt.Println()
	}
	if all || want["fig12"] {
		r, err := gpues.Figure12(withScale(2))
		if err != nil {
			fail(err)
		}
		show(r)
	}
	if all || want["fig13"] {
		r, err := gpues.Figure13(withScale(2))
		if err != nil {
			fail(err)
		}
		show(r)
	}
	if all || want["fig14"] {
		r, err := gpues.Figure14(withScale(1))
		if err != nil {
			fail(err)
		}
		show(r)
	}
	if all || want["scalability"] || want["scal"] {
		r, err := gpues.SchemeScalability(withScale(1))
		if err != nil {
			fail(err)
		}
		show(r)
		r, err = gpues.LocalHandlingScalability(withScale(1))
		if err != nil {
			fail(err)
		}
		show(r)
	}
	if all || want["ablations"] {
		rs, err := gpues.RunAblations(withScale(1))
		if err != nil {
			fail(err)
		}
		for _, r := range rs {
			show(r)
		}
	}
	// Not part of "all": a robustness sweep, not a paper figure.
	if want["chaos"] {
		r, err := gpues.ChaosSweep(withScale(1))
		if err != nil {
			fail(err)
		}
		show(r)
	}
	// Not part of "all": the bit-flip resilience campaign.
	if want["resilience"] {
		r, err := gpues.ResilienceSweep(withScale(1))
		if err != nil {
			fail(err)
		}
		show(r)
	}

	stopProf()
	if err := prof.WriteHeap(*memProf); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
