// Command simbisect finds the first cycle at which two simulator runs
// diverge, and the first component whose state differs there. Both
// runs execute the same workload; each side is either an in-process
// variant described by -a/-b key=value overrides, or an external
// gpusim-compatible command (-exec-a/-exec-b) probed via its
// -digest-at flag. Because the simulator is deterministic, state
// digests disagree from the first divergent cycle onward, so a binary
// search over replays pinpoints it in O(log N) probes.
//
// Examples:
//
//	simbisect -workload sgemm -a scheme=replay-queue -b scheme=operand-log
//	simbisect -workload stencil -b perturb=5000:cache.l2
//	simbisect -workload sgemm -ckpt-a runA.ckpts -ckpt-b runB.ckpts -b chaos-level=2
//	simbisect -exec-a "./gpusim-good -workload bfs" -exec-b "./gpusim-bad -workload bfs"
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gpues/internal/bisect"
	"gpues/internal/chaos"
	"gpues/internal/config"
	"gpues/internal/obs"
	"gpues/internal/sim"
	"gpues/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "sgemm", "workload both runs execute")
		scale    = flag.Int("scale", 1, "dataset scale factor")
		aSpec    = flag.String("a", "", "run A overrides: comma-separated key=value (scheme, link, paging, lazy, switching, local, log-kb, chaos-level, chaos-seed, perturb=cycle:component)")
		bSpec    = flag.String("b", "", "run B overrides, same syntax as -a")
		execA    = flag.String("exec-a", "", "probe run A via this gpusim command line instead of in-process")
		execB    = flag.String("exec-b", "", "probe run B via this gpusim command line instead of in-process")
		lo       = flag.Int64("lo", 0, "lower bound cycle (runs must agree here)")
		hi       = flag.Int64("hi", -1, "upper bound cycle, -1 = run to completion")
		ckptA    = flag.String("ckpt-a", "", "run A checkpoint directory; with -ckpt-b, raises -lo to the nearest shared agreeing checkpoint")
		ckptB    = flag.String("ckpt-b", "", "run B checkpoint directory (see -ckpt-a)")
		window   = flag.Int("trace-window", 16, "print this many trace events leading up to the divergence (in-process runs only, 0 = off)")
	)
	flag.Parse()

	lower := *lo
	if *ckptA != "" || *ckptB != "" {
		if *ckptA == "" || *ckptB == "" {
			fatal(fmt.Errorf("-ckpt-a and -ckpt-b must be given together"))
		}
		shared, err := bisect.NearestShared(*ckptA, *ckptB)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("nearest shared checkpoint: cycle %d\n", shared)
		if shared > lower {
			lower = shared
		}
	}

	var vb *variant
	runnerA, _, err := makeRunner(*execA, *aSpec, *workload, *scale)
	if err != nil {
		fatal(fmt.Errorf("run A: %w", err))
	}
	runnerB, vbTmp, err := makeRunner(*execB, *bSpec, *workload, *scale)
	if err != nil {
		fatal(fmt.Errorf("run B: %w", err))
	}
	vb = vbTmp

	rep, err := bisect.FirstDivergence(runnerA, runnerB, lower, *hi)
	if err != nil {
		fatal(err)
	}
	fmt.Println(rep)
	if !rep.Diverged {
		return
	}
	fmt.Printf("  run A stopped at cycle %d (done=%v), run B at %d (done=%v)\n",
		rep.A.Cycle, rep.A.Done, rep.B.Cycle, rep.B.Done)

	if *window > 0 && vb != nil {
		if err := printTraceWindow(vb, *workload, *scale, rep.FirstCycle, *window); err != nil {
			fmt.Fprintf(os.Stderr, "trace window: %v\n", err)
		}
	}
	os.Exit(1) // divergence found: non-zero, like cmp/diff
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simbisect:", err)
	os.Exit(2)
}

// variant is one in-process run configuration.
type variant struct {
	cfg        config.Config
	place      workloads.Placement
	chaosLevel int
	chaosSeed  int64
	perturbs   []perturb
}

type perturb struct {
	cycle     int64
	component string
}

// makeRunner builds one side's Runner: an ExecRunner when execCmd is
// set, otherwise an in-process SimRunner from the override spec. The
// returned variant is non-nil only for in-process runs.
func makeRunner(execCmd, spec, workload string, scale int) (bisect.Runner, *variant, error) {
	if execCmd != "" {
		if spec != "" {
			return nil, nil, fmt.Errorf("-exec-* and in-process overrides are mutually exclusive")
		}
		return bisect.ExecRunner{Argv: strings.Fields(execCmd)}, nil, nil
	}
	v, err := parseVariant(spec)
	if err != nil {
		return nil, nil, err
	}
	return bisect.SimRunner{Build: v.build(workload, scale)}, v, nil
}

// parseVariant applies comma-separated key=value overrides to the
// default configuration.
func parseVariant(spec string) (*variant, error) {
	v := &variant{cfg: config.Default(), place: workloads.Resident(), chaosSeed: 1}
	if spec == "" {
		return v, nil
	}
	for _, item := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("override %q is not key=value", item)
		}
		if err := v.apply(key, val); err != nil {
			return nil, err
		}
	}
	return v, nil
}

func (v *variant) apply(key, val string) error {
	switch key {
	case "scheme":
		s, err := parseScheme(val)
		if err != nil {
			return err
		}
		v.cfg.Scheme = s
	case "link":
		switch val {
		case "nvlink":
			v.cfg.Link = config.NVLinkConfig()
		case "pcie":
			v.cfg.Link = config.PCIeConfig()
		default:
			return fmt.Errorf("unknown link %q", val)
		}
	case "paging":
		b, err := strconv.ParseBool(val)
		if err != nil {
			return fmt.Errorf("paging: %v", err)
		}
		v.cfg.DemandPaging = b
		if b {
			v.place = workloads.DemandPaging()
		}
	case "lazy":
		b, err := strconv.ParseBool(val)
		if err != nil {
			return fmt.Errorf("lazy: %v", err)
		}
		if b {
			v.place = workloads.LazyOutput()
		}
	case "switching":
		b, err := strconv.ParseBool(val)
		if err != nil {
			return fmt.Errorf("switching: %v", err)
		}
		v.cfg.Scheduler.Enabled = b
	case "local":
		b, err := strconv.ParseBool(val)
		if err != nil {
			return fmt.Errorf("local: %v", err)
		}
		v.cfg.Local.Enabled = b
	case "log-kb":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("log-kb: %v", err)
		}
		v.cfg.SM.OperandLog.SizeKB = n
	case "chaos-level":
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 || n > 3 {
			return fmt.Errorf("chaos-level %q must be an integer in [0,3]", val)
		}
		v.chaosLevel = n
	case "chaos-seed":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("chaos-seed: %v", err)
		}
		v.chaosSeed = n
	case "perturb":
		cycleStr, comp, ok := strings.Cut(val, ":")
		if !ok {
			return fmt.Errorf("perturb %q is not cycle:component", val)
		}
		cycle, err := strconv.ParseInt(cycleStr, 10, 64)
		if err != nil || cycle < 0 {
			return fmt.Errorf("perturb cycle %q must be a non-negative integer", cycleStr)
		}
		v.perturbs = append(v.perturbs, perturb{cycle: cycle, component: comp})
	default:
		return fmt.Errorf("unknown override key %q", key)
	}
	return nil
}

func parseScheme(s string) (config.Scheme, error) {
	switch s {
	case "baseline":
		return config.Baseline, nil
	case "wd-commit":
		return config.WarpDisableCommit, nil
	case "wd-lastcheck":
		return config.WarpDisableLastCheck, nil
	case "replay-queue":
		return config.ReplayQueue, nil
	case "operand-log":
		return config.OperandLog, nil
	}
	return 0, fmt.Errorf("unknown scheme %q", s)
}

// newSim builds a fresh, fully wired simulator for the variant; tr may
// be nil.
func (v *variant) newSim(workload string, scale int, tr *obs.Tracer) (*sim.Simulator, error) {
	spec, err := workloads.Build(workload, workloads.Params{Scale: scale, Placement: v.place})
	if err != nil {
		return nil, err
	}
	s, err := sim.New(v.cfg, spec)
	if err != nil {
		return nil, err
	}
	if v.chaosLevel > 0 {
		plan, err := chaos.ForLevel(v.chaosLevel, v.chaosSeed)
		if err != nil {
			return nil, err
		}
		s.AttachChaos(plan)
	}
	if tr != nil {
		s.AttachTracer(tr)
	}
	for _, p := range v.perturbs {
		if err := s.InjectDivergence(p.cycle, p.component); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (v *variant) build(workload string, scale int) func() (*sim.Simulator, error) {
	return func() (*sim.Simulator, error) { return v.newSim(workload, scale, nil) }
}

// printTraceWindow replays run B once more with a flight-recorder
// tracer to the divergence cycle and prints the trailing events — the
// activity leading into the first divergent state.
func printTraceWindow(v *variant, workload string, scale int, cycle int64, n int) error {
	tr := obs.New(obs.Options{})
	s, err := v.newSim(workload, scale, tr)
	if err != nil {
		return err
	}
	if err := s.Start(); err != nil {
		return err
	}
	if _, err := s.StepTo(cycle); err != nil {
		return err
	}
	events := tr.LastN(n)
	fmt.Printf("  last %d trace events of run B before cycle %d:\n", len(events), cycle)
	for _, e := range events {
		fmt.Printf("    %s\n", e)
	}
	return nil
}
