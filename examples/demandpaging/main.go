// Demand paging example (use case 1): run a kernel whose data starts in
// CPU memory, so every first touch triggers an on-demand page
// migration, and compare plain stalling against thread block switching
// on fault — the paper's Figure 12 experiment for one benchmark.
package main

import (
	"fmt"
	"log"

	"gpues"
)

func run(workload string, link string, switching, ideal bool) *gpues.Result {
	spec, err := gpues.BuildWorkload(workload, gpues.WorkloadParams{
		Scale:     2,
		Placement: gpues.DemandPagingPlacement(),
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := gpues.DefaultConfig()
	cfg.Scheme = gpues.ReplayQueue // switching needs preemptible faults
	cfg.DemandPaging = true
	if link == "pcie" {
		cfg.Link = gpues.PCIeConfig()
	}
	cfg.Scheduler.Enabled = switching
	cfg.Scheduler.IdealContextSwitch = ideal

	res, err := gpues.Run(cfg, spec)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	const workload = "sgemm"
	fmt.Printf("on-demand paging of %s: all data starts in CPU memory\n\n", workload)

	for _, link := range []string{"nvlink", "pcie"} {
		base := run(workload, link, false, false)
		sw := run(workload, link, true, false)
		id := run(workload, link, true, true)

		var out, in int64
		for _, s := range sw.SMs {
			out += s.SwitchesOut
			in += s.SwitchesIn
		}
		fmt.Printf("%s:\n", link)
		fmt.Printf("  no switching     %8d cycles (%d migrations, link %.0f%% busy)\n",
			base.Cycles, base.CPUFaults.Migrations, 100*base.LinkUtil)
		fmt.Printf("  block switching  %8d cycles (speedup %.3f, %d blocks switched out, %d restored)\n",
			sw.Cycles, float64(base.Cycles)/float64(sw.Cycles), out, in)
		fmt.Printf("  ideal 1-cy switch%8d cycles (speedup %.3f)\n\n",
			id.Cycles, float64(base.Cycles)/float64(id.Cycles))
	}

	fmt.Println("While a faulted block waits for its pages, the local scheduler")
	fmt.Println("saves its context off-chip and runs another pending block.")
}
