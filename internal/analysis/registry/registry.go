// Package registry lists every simlint analyzer, in the order drivers
// run and document them.
package registry

import (
	"gpues/internal/analysis"
	"gpues/internal/analysis/determinism"
	"gpues/internal/analysis/enumswitch"
	"gpues/internal/analysis/noalloc"
	"gpues/internal/analysis/poolsafe"
)

// All returns the full analyzer suite.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		poolsafe.Analyzer,
		noalloc.Analyzer,
		enumswitch.Analyzer,
	}
}
