package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Program is the whole-program view the interprocedural analyzers
// finish against: every package the driver analyzed this run (in
// analysis order — dependencies before dependents in standalone mode,
// the single unit package in vettool mode) plus the shared fact store
// their Run phases populated. All packages share one FileSet, so
// positions travel freely across package boundaries.
type Program struct {
	Fset  *token.FileSet
	Pkgs  []*LoadedPackage
	Facts *FactStore

	byPath map[string]*LoadedPackage
}

// NewProgram assembles a program over already-analyzed packages.
func NewProgram(fset *token.FileSet, pkgs []*LoadedPackage, facts *FactStore) *Program {
	p := &Program{Fset: fset, Pkgs: pkgs, Facts: facts, byPath: map[string]*LoadedPackage{}}
	for _, lp := range pkgs {
		p.byPath[lp.Path] = lp
	}
	return p
}

// Package returns the loaded package with the given import path, or
// nil when it was not part of this run.
func (p *Program) Package(path string) *LoadedPackage { return p.byPath[path] }

// PackageAt returns the loaded package containing pos (used to apply
// that package's //simlint:ignore suppressions to finish-phase
// diagnostics), or nil for positions outside the program.
func (p *Program) PackageAt(pos token.Pos) *LoadedPackage {
	if !pos.IsValid() {
		return nil
	}
	file := p.Fset.File(pos)
	if file == nil {
		return nil
	}
	name := file.Name()
	for _, lp := range p.Pkgs {
		for _, f := range lp.Files {
			if tf := p.Fset.File(f.Pos()); tf != nil && tf.Name() == name {
				return lp
			}
		}
	}
	return nil
}

// RunFinish invokes the analyzer's Finish hook (if any) over the
// program and returns the surviving diagnostics, sorted by position.
// Suppression comments are honored exactly as in the per-package Run
// phase, resolved against whichever package a diagnostic lands in.
func RunFinish(a *Analyzer, prog *Program) ([]Diagnostic, error) {
	if a.Finish == nil {
		return nil, nil
	}
	diags, err := a.Finish(prog)
	if err != nil {
		return nil, fmt.Errorf("%s (finish): %w", a.Name, err)
	}
	var kept []Diagnostic
	for _, d := range diags {
		if lp := prog.PackageAt(d.Pos); lp != nil {
			sup := BuildSuppressions(prog.Fset, lp.Files)
			if sup.Suppressed(prog.Fset, a.Name, d) {
				continue
			}
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}
