// Package cacti provides an analytic SRAM area and power model in the
// spirit of CACTI 6.5 [Muralimanohar et al. 2009], used to reproduce
// Table 2: the area and power overheads of the operand log.
//
// The paper models the log as a single-ported SRAM at the 40 nm node,
// applies a 1.5x factor for control logic, and compares against a
// 16 mm^2 SM / 561 mm^2 GPU [Rogers et al. 2015] drawing 5.7 W per SM /
// 130 W per chip [Gebhart et al. 2012], assuming the worst case of one
// log write per cycle. This package implements a first-order
// technology-scaled SRAM model calibrated to CACTI-class 40 nm numbers
// and reproduces that methodology.
package cacti

import "fmt"

// TechNode describes a manufacturing process for the SRAM model. Small
// single-ported arrays are dominated by periphery (decoders, sense
// amplifiers, drivers), so both area and power take the affine form
// fixed-periphery + per-bit-array; the per-bit terms fold in array
// overheads (the effective bit pitch of a small 40 nm array is several
// times the raw 6T cell).
type TechNode struct {
	// NM is the feature size in nanometres.
	NM float64
	// PeripheryUM2 is the fixed periphery area.
	PeripheryUM2 float64
	// BitAreaUM2 is the effective per-bit array area (cell + local
	// overheads).
	BitAreaUM2 float64
	// FixedAccessPJ is the access energy of the periphery (paid every
	// access regardless of array size).
	FixedAccessPJ float64
	// BitPowerNW is the per-bit standing power: leakage plus worst-case
	// bitline dynamic power at full toggle rate.
	BitPowerNW float64
}

// Node40nm is the 40 nm node used throughout the paper's analysis,
// calibrated against the CACTI 6.5 results the paper reports in Table 2
// (the calibration is exact at 8 KB and 32 KB; the 16 and 20 KB rows
// then fall out within 2%).
var Node40nm = TechNode{
	NM:            40,
	PeripheryUM2:  64000,
	BitAreaUM2:    0.716,
	FixedAccessPJ: 49.4,
	BitPowerNW:    301.5,
}

// SRAMConfig describes the modelled array.
type SRAMConfig struct {
	SizeBytes int
	// AccessBytes is the width of one access (one operand log entry:
	// 32 lanes x 8 B = 256 B).
	AccessBytes int
	// Ports is the number of read/write ports (1: the SM issues at most
	// one memory instruction per cycle, Section 3.3).
	Ports int
	// ControlOverhead multiplies area and power for decoders, sense
	// amplifiers and control logic (the paper uses 1.5).
	ControlOverhead float64
	Node            TechNode
}

// DefaultLogConfig returns the operand log array configuration for the
// given size in KB.
func DefaultLogConfig(sizeKB int) SRAMConfig {
	return SRAMConfig{
		SizeBytes:       sizeKB * 1024,
		AccessBytes:     256,
		Ports:           1,
		ControlOverhead: 1.5,
		Node:            Node40nm,
	}
}

// AreaMM2 returns the array area in mm^2: periphery plus cell array,
// times the control overhead factor.
func (c SRAMConfig) AreaMM2() float64 {
	bits := float64(c.SizeBytes * 8)
	// Multi-porting grows the cell roughly linearly beyond one port.
	portFactor := 1 + 0.7*float64(c.Ports-1)
	um2 := (c.Node.PeripheryUM2 + bits*c.Node.BitAreaUM2*portFactor) * c.ControlOverhead
	return um2 / 1e6
}

// StandingPowerW returns the array's size-dependent power (leakage plus
// worst-case bitline toggling) in watts.
func (c SRAMConfig) StandingPowerW() float64 {
	bits := float64(c.SizeBytes * 8)
	return bits * c.Node.BitPowerNW * c.ControlOverhead / 1e9
}

// AccessEnergyJ returns the periphery energy of one access in joules.
func (c SRAMConfig) AccessEnergyJ() float64 {
	return c.Node.FixedAccessPJ * c.ControlOverhead / 1e12
}

// PowerW returns the total power at the given access rate (accesses per
// second). The paper assumes the worst case of one log write per cycle,
// i.e. accessesPerSec = 1e9 at 1 GHz.
func (c SRAMConfig) PowerW(accessesPerSec float64) float64 {
	return c.StandingPowerW() + c.AccessEnergyJ()*accessesPerSec
}

// Baselines from the paper's methodology (Section 5.2).
const (
	// SMAreaMM2 and GPUAreaMM2 are the conservative area estimates from
	// [Rogers et al. 2015] for a 16-SM chip.
	SMAreaMM2  = 16.0
	GPUAreaMM2 = 561.0
	// SMPowerW and GPUPowerW are from [Gebhart et al. 2012].
	SMPowerW  = 5.7
	GPUPowerW = 130.0
	// FrequencyHz is the worst-case access rate: one write per cycle.
	FrequencyHz = 1e9
)

// Overheads is one row of Table 2.
type Overheads struct {
	LogKB        int
	SMAreaPct    float64
	GPUAreaPct   float64
	SMPowerPct   float64
	GPUPowerPct  float64
	AreaMM2      float64
	TotalPowerW  float64
	AccessEnergy float64
}

// LogOverheads computes the Table 2 row for a log of the given size.
// The log is per SM; the GPU has 16 of them.
func LogOverheads(sizeKB int) (Overheads, error) {
	if sizeKB <= 0 {
		return Overheads{}, fmt.Errorf("cacti: log size %d KB", sizeKB)
	}
	cfg := DefaultLogConfig(sizeKB)
	area := cfg.AreaMM2()
	power := cfg.PowerW(FrequencyHz)
	const numSMs = 16
	return Overheads{
		LogKB:        sizeKB,
		AreaMM2:      area,
		TotalPowerW:  power,
		AccessEnergy: cfg.AccessEnergyJ(),
		SMAreaPct:    100 * area / SMAreaMM2,
		GPUAreaPct:   100 * area * numSMs / GPUAreaMM2,
		SMPowerPct:   100 * power / SMPowerW,
		GPUPowerPct:  100 * power * numSMs / GPUPowerW,
	}, nil
}

// Table2 computes the paper's Table 2: overheads for 8, 16, 20 and
// 32 KB logs.
func Table2() ([]Overheads, error) {
	var rows []Overheads
	for _, kb := range []int{8, 16, 20, 32} {
		r, err := LogOverheads(kb)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}
