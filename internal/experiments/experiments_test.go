package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"gpues/internal/config"
	"gpues/internal/sim"
	"gpues/internal/workloads"
)

// The full suites run via cmd/experiments; tests here exercise the
// harness machinery on single-benchmark subsets.

func TestFig10SubsetShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	r, err := Fig10(Options{Scale: 1, Benchmarks: []string{"mri-q"}})
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "fig10" || len(r.Rows) != 1 {
		t.Fatalf("result = %+v", r)
	}
	row := r.Rows[0]
	wd := row.Values["wd-commit"]
	lc := row.Values["wd-lastcheck"]
	rq := row.Values["replay-queue"]
	if wd <= 0 || lc <= 0 || rq <= 0 {
		t.Fatalf("missing values: %+v", row.Values)
	}
	// The ordering invariant of Section 5.2: baseline >= rq >= lc >= wd
	// (small tolerance for structural noise).
	if wd > lc*1.02 || lc > rq*1.02 || rq > 1.02 {
		t.Errorf("scheme ordering violated: wd=%.3f lc=%.3f rq=%.3f", wd, lc, rq)
	}
	if g := r.Geomean["wd-commit"]; g != wd {
		t.Errorf("single-row geomean = %v, want %v", g, wd)
	}
}

func TestFig13SubsetRouting(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	r, err := Fig13(Options{Scale: 1, Benchmarks: []string{"halloc-spree"}})
	if err != nil {
		t.Fatal(err)
	}
	nv := r.Rows[0].Values["nvlink"]
	pc := r.Rows[0].Values["pcie"]
	if nv <= 1 {
		t.Errorf("local handling of halloc-spree must win on NVLink, got %.3f", nv)
	}
	if pc <= nv {
		t.Errorf("PCIe speedup (%.3f) must exceed NVLink's (%.3f): higher fault cost, more contention", pc, nv)
	}
}

func TestProgressCallback(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	var lines []string
	_, err := Fig10(Options{
		Scale:      1,
		Benchmarks: []string{"mri-q"},
		Progress:   func(s string) { lines = append(lines, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 schemes = 4 runs.
	if len(lines) != 4 {
		t.Errorf("progress lines = %d, want 4", len(lines))
	}
}

func TestUnknownBenchmarkFails(t *testing.T) {
	if _, err := Fig10(Options{Benchmarks: []string{"nope"}}); err == nil {
		t.Fatal("unknown benchmark must fail")
	}
}

func TestTable1Render(t *testing.T) {
	out := Table1()
	for _, want := range []string{"16 SMs", "64 page table walkers", "256 GB/s", "64 KB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestResultString(t *testing.T) {
	r := &Result{
		ID:      "figX",
		Title:   "test",
		Metric:  "ratio",
		Columns: []string{"a", "b"},
		Rows: []Row{
			{Benchmark: "w1", Values: map[string]float64{"a": 1.5, "b": 0.5}},
			{Benchmark: "w2", Values: map[string]float64{"a": 2.0, "b": 0.5}},
		},
		Geomean: map[string]float64{},
	}
	for _, c := range r.Columns {
		r.Geomean[c] = geomean(r.Rows, c)
	}
	out := r.String()
	if !strings.Contains(out, "figX") || !strings.Contains(out, "geomean") {
		t.Errorf("rendered:\n%s", out)
	}
	// geomean(1.5, 2.0) = sqrt(3).
	if g := r.Geomean["a"]; g < 1.73 || g > 1.74 {
		t.Errorf("geomean a = %v, want ~1.732", g)
	}
	if g := r.Geomean["b"]; g != 0.5 {
		t.Errorf("geomean b = %v, want 0.5", g)
	}
}

func TestGeomeanSkipsZeros(t *testing.T) {
	rows := []Row{
		{Benchmark: "w1", Values: map[string]float64{"a": 2.0}},
		{Benchmark: "w2", Values: map[string]float64{}}, // missing
	}
	if g := geomean(rows, "a"); g != 2.0 {
		t.Errorf("geomean = %v, want 2.0 (missing values skipped)", g)
	}
	if g := geomean(nil, "a"); g != 0 {
		t.Errorf("empty geomean = %v, want 0", g)
	}
}

func TestResumeDirSkipsFinishedRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	opt := Options{Scale: 1, Benchmarks: []string{"mri-q"}, ResumeDir: dir, CheckpointEvery: 20_000}

	first, err := Fig10(opt)
	if err != nil {
		t.Fatal(err)
	}
	done, err := filepath.Glob(filepath.Join(dir, "fig10-mri-q-*.done.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 4 { // 4 schemes
		t.Fatalf("done files = %v, want 4", done)
	}

	// Second invocation must skip every run and reproduce the figure.
	var lines []string
	opt.Progress = func(s string) { lines = append(lines, s) }
	second, err := Fig10(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lines {
		if !strings.Contains(l, "skipped") {
			t.Errorf("run not skipped on resume: %s", l)
		}
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("resumed figure differs:\nfirst  %v\nsecond %v", first, second)
	}
}

func TestResumeDirDiscardStaleDoneFile(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	// A done-file from a different scale must not satisfy this campaign.
	stale := doneRecord{Fig: "fig10", Bench: "mri-q", Col: "baseline", Scale: 7, Cycles: 1}
	data, _ := json.Marshal(stale)
	if err := os.WriteFile(filepath.Join(dir, "fig10-mri-q-baseline.done.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Fig10(Options{Scale: 1, Benchmarks: []string{"mri-q"}, ResumeDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Rows[0].Values["replay-queue"]; v <= 0 || v > 1.02 {
		t.Errorf("stale done-file corrupted the figure: %+v", r.Rows[0].Values)
	}
}

// A torn done-file (kill -9 mid-write leaves only the .tmp sibling, or
// a corrupt destination) must read as absent: the job reruns instead of
// being skipped with garbage cycles.
func TestResumeDirIgnoresTornDoneFile(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	// Only the .tmp sibling exists: the atomic-write idiom guarantees the
	// destination never appears half-written, so this is the on-disk
	// state after a mid-write kill.
	if err := os.WriteFile(filepath.Join(dir, "fig10-mri-q-baseline.done.json.tmp"),
		[]byte(`{"fig":"fig10","bench":"mri-q"`), 0o644); err != nil {
		t.Fatal(err)
	}
	// And a sibling column's destination holds garbage (torn by a
	// non-atomic writer): it must be discarded, not half-decoded.
	if err := os.WriteFile(filepath.Join(dir, "fig10-mri-q-replay-queue.done.json"),
		[]byte(`{"fig":"fig10","cycles":`), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Fig10(Options{Scale: 1, Benchmarks: []string{"mri-q"}, ResumeDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Rows[0].Values["replay-queue"]; v <= 0 || v > 1.02 {
		t.Errorf("torn done-files corrupted the figure: %+v", r.Rows[0].Values)
	}
}

// A checkpoint written under a different configuration (here: another
// scheme) must be discarded — fingerprint mismatch — and the job rerun
// from scratch on a fresh memory image.
func TestResumeDirDiscardsStaleCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()

	// Plant a mid-flight checkpoint of a replay-queue run where the
	// baseline column's checkpoints live.
	cfg := config.Default()
	cfg.Scheme = config.ReplayQueue
	spec, err := workloads.Build("mri-q", workloads.Params{Scale: 1, Placement: workloads.Resident()})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StepTo(5000); err != nil {
		t.Fatal(err)
	}
	ckptDir := filepath.Join(dir, "fig10-mri-q-baseline.ckpts")
	if _, err := s.WriteCheckpoint(ckptDir); err != nil {
		t.Fatal(err)
	}

	var lines []string
	r, err := Fig10(Options{Scale: 1, Benchmarks: []string{"mri-q"}, ResumeDir: dir,
		Progress: func(s string) { lines = append(lines, s) }})
	if err != nil {
		t.Fatal(err)
	}
	discarded := false
	for _, l := range lines {
		if strings.Contains(l, "discarding checkpoint") {
			discarded = true
		}
	}
	if !discarded {
		t.Errorf("stale checkpoint was not discarded; progress: %q", lines)
	}
	if v := r.Rows[0].Values["replay-queue"]; v <= 0 || v > 1.02 {
		t.Errorf("stale checkpoint corrupted the figure: %+v", r.Rows[0].Values)
	}
}
