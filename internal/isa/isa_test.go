package isa

import (
	"strings"
	"testing"
)

func TestRegString(t *testing.T) {
	if Reg(3).String() != "R3" || RZ.String() != "RZ" || RegNone.String() != "-" {
		t.Errorf("register formatting wrong: %v %v %v", Reg(3), RZ, RegNone)
	}
}

func TestGlobalMemClassification(t *testing.T) {
	global := []Op{OpLdGlobal, OpStGlobal, OpAtomGlobal}
	for _, op := range global {
		in := NewInstruction(op)
		if !in.IsGlobalMem() {
			t.Errorf("%v must be global memory (potentially faulting)", op.Mnemonic())
		}
		if !in.IsMem() {
			t.Errorf("%v must be a memory op", op.Mnemonic())
		}
		if in.ExecUnit() != UnitLoadStore {
			t.Errorf("%v must use the ld/st unit", op.Mnemonic())
		}
	}
	// Shared memory accesses never fault: shared memory is not subject
	// to translation (Section 2.1).
	for _, op := range []Op{OpLdShared, OpStShared} {
		in := NewInstruction(op)
		if in.IsGlobalMem() {
			t.Errorf("%v must not be potentially faulting", op.Mnemonic())
		}
		if !in.IsMem() {
			t.Errorf("%v must be a memory op", op.Mnemonic())
		}
	}
	for _, op := range []Op{OpIAdd, OpFFma, OpBra, OpS2R, OpFSqrt} {
		if NewInstruction(op).IsGlobalMem() {
			t.Errorf("%v must not be potentially faulting", op.Mnemonic())
		}
	}
}

func TestExecUnits(t *testing.T) {
	cases := map[Op]Unit{
		OpIAdd: UnitMath, OpFFma: UnitMath, OpSetP: UnitMath, OpS2R: UnitMath,
		OpMov: UnitMath, OpLdParam: UnitMath, OpI2F: UnitMath,
		OpFRcp: UnitSpecial, OpFSqrt: UnitSpecial, OpFSin: UnitSpecial,
		OpFExp: UnitSpecial, OpFRsqrt: UnitSpecial,
		OpLdGlobal: UnitLoadStore, OpStShared: UnitLoadStore,
		OpBra: UnitBranch, OpBar: UnitBranch, OpExit: UnitBranch,
		OpNop: UnitNone,
	}
	for op, want := range cases {
		in := NewInstruction(op)
		if got := in.ExecUnit(); got != want {
			t.Errorf("%v unit = %v, want %v", op.Mnemonic(), got, want)
		}
	}
}

func TestControlFlowDisablesFetch(t *testing.T) {
	for _, op := range []Op{OpBra, OpBar, OpExit} {
		in := NewInstruction(op)
		if !in.IsControl() {
			t.Errorf("%v must be control flow", op.Mnemonic())
		}
	}
	for _, op := range []Op{OpIAdd, OpLdGlobal, OpNop} {
		in := NewInstruction(op)
		if in.IsControl() {
			t.Errorf("%v must not be control flow", op.Mnemonic())
		}
	}
}

func TestSourceRegsExcludesRZAndNone(t *testing.T) {
	in := NewInstruction(OpIMad)
	in.SrcA, in.SrcB, in.SrcC = 1, RZ, 7
	in.Pred = 9
	got := in.SourceRegs(nil)
	if len(got) != 3 {
		t.Fatalf("SourceRegs = %v, want [R1 R7 R9]", got)
	}
	want := map[Reg]bool{1: true, 7: true, 9: true}
	for _, r := range got {
		if !want[r] {
			t.Errorf("unexpected source %v", r)
		}
	}
}

func TestWrites(t *testing.T) {
	in := NewInstruction(OpIAdd)
	in.Dst = 5
	if !in.Writes() {
		t.Error("instruction with Dst=R5 must write")
	}
	in.Dst = RZ
	if in.Writes() {
		t.Error("write to RZ is discarded, not scoreboarded")
	}
	st := NewInstruction(OpStGlobal)
	if st.Writes() {
		t.Error("store has no destination register")
	}
}

func TestDisassembly(t *testing.T) {
	ld := NewInstruction(OpLdGlobal)
	ld.Dst, ld.SrcA, ld.Imm, ld.Size = 3, 2, 16, 8
	if s := ld.String(); !strings.Contains(s, "ld.global") || !strings.Contains(s, "R3") {
		t.Errorf("load disassembly = %q", s)
	}
	br := NewInstruction(OpBra)
	br.Pred, br.PredNeg, br.Target, br.Reconv = 4, true, 10, 12
	if s := br.String(); !strings.Contains(s, "@!R4") || !strings.Contains(s, "10") {
		t.Errorf("branch disassembly = %q", s)
	}
	atom := NewInstruction(OpAtomGlobal)
	atom.Atom = AtomAdd
	if s := atom.String(); !strings.Contains(s, "atom.global.add") {
		t.Errorf("atomic disassembly = %q", s)
	}
	setp := NewInstruction(OpSetP)
	setp.Cmp = CmpLT
	if s := setp.String(); !strings.Contains(s, "isetp.lt") {
		t.Errorf("setp disassembly = %q", s)
	}
	if SRTidX.String() != "tid.x" || SRCtaIDX.String() != "ctaid.x" {
		t.Errorf("special register names: %v %v", SRTidX, SRCtaIDX)
	}
}
