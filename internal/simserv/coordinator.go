package simserv

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"gpues/internal/obs"
	"gpues/internal/simserv/queue"
)

// FabricSink receives fabric metric snapshots; obsrv.Server implements
// it, putting queue depth, retry counts and cache hit rates on the
// same Prometheus /metrics endpoint the simulator telemetry uses.
type FabricSink interface {
	PublishFabric(obs.Snapshot)
}

// Options parameterizes a coordinator.
type Options struct {
	// Queue carries the state-machine knobs: Cap (admission), Lease,
	// MaxRetries, Backoff/MaxBackoff and the jitter Seed, all durations
	// in nanoseconds.
	Queue queue.Config
	// JournalDir roots the crash-only journal and checkpoint spool.
	JournalDir string
	// TenantRate/TenantBurst shape per-tenant admission: a token
	// bucket of TenantBurst capacity refilling at TenantRate
	// submissions per second. Rate 0 disables quotas.
	TenantRate  float64
	TenantBurst int
	// Sink, when set, receives a metrics snapshot after every state
	// change.
	Sink FabricSink
	// Now supplies the clock in nanoseconds; nil means wall time. Tests
	// inject a fake clock here and drive Tick explicitly.
	Now func() int64
}

// bucket is one tenant's token bucket.
type bucket struct {
	tokens float64
	last   int64
}

// Coordinator owns the job fabric: the queue state machine, the
// journal, the result cache, admission control and the HTTP API.
// All state mutates under mu; the journal write lands before any
// transition is acknowledged over HTTP.
type Coordinator struct {
	opt Options
	mux *http.ServeMux

	mu       sync.Mutex
	q        *queue.Queue
	jr       *Journal
	cache    map[string]queue.Result
	buckets  map[string]*bucket
	idSeq    int64
	draining bool
	drained  chan struct{}
	drainDur int64 // last completed drain, ns

	cacheHits     int64
	cacheMisses   int64
	rejectedQuota int64

	reg        *obs.Registry
	lastCounts queue.Counters
	evCounters map[string]*obs.Counter
}

// NewCoordinator opens (or reopens) the fabric rooted at
// opt.JournalDir: journaled jobs are reloaded verbatim — leases
// included, so the reaper reclaims work from workers that died with
// the coordinator — and the result cache is rebuilt from completed
// records.
func NewCoordinator(opt Options) (*Coordinator, error) {
	jr, err := OpenJournal(opt.JournalDir)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		opt:     opt,
		q:       queue.New(opt.Queue),
		jr:      jr,
		cache:   make(map[string]queue.Result),
		buckets: make(map[string]*bucket),
		drained: make(chan struct{}),
	}
	jobs, skipped, err := jr.Load()
	if err != nil {
		return nil, err
	}
	_ = skipped // corrupt records are rerun, not fatal
	for _, j := range jobs {
		c.q.Load(j)
		if n := jobSeqNum(j.ID); n > c.idSeq {
			c.idSeq = n
		}
		if j.State == queue.Done && j.Key != "" && j.Result != nil {
			if _, ok := c.cache[j.Key]; !ok || !j.Result.CacheHit {
				c.cache[j.Key] = *j.Result
			}
		}
	}
	c.q.Reorder()
	c.initMetrics()
	c.buildMux()
	return c, nil
}

// jobSeqNum extracts n from an auto-assigned "j-%06d" ID (0 otherwise).
func jobSeqNum(id string) int64 {
	if len(id) < 3 || id[:2] != "j-" {
		return 0
	}
	n, err := strconv.ParseInt(id[2:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

func (c *Coordinator) now() int64 {
	if c.opt.Now != nil {
		return c.opt.Now()
	}
	return time.Now().UnixNano()
}

// initMetrics registers the fabric metrics. Queue event counts mirror
// queue.Counters via delta sync in publish; gauges read live state.
// Everything is touched under mu only, satisfying the registry's
// single-goroutine contract.
func (c *Coordinator) initMetrics() {
	c.reg = obs.NewRegistry()
	c.evCounters = map[string]*obs.Counter{}
	for _, name := range []string{
		"fabric.jobs.submitted", "fabric.jobs.completed", "fabric.jobs.coalesced",
		"fabric.failures", "fabric.retries", "fabric.lease.expiries",
		"fabric.dead.letters", "fabric.stale.ops", "fabric.preemptions",
		"fabric.resumes", "fabric.rejected.full",
	} {
		c.evCounters[name] = c.reg.Counter(name)
	}
	c.evCounters["fabric.cache.hits"] = c.reg.Counter("fabric.cache.hits")
	c.evCounters["fabric.cache.misses"] = c.reg.Counter("fabric.cache.misses")
	c.evCounters["fabric.rejected.quota"] = c.reg.Counter("fabric.rejected.quota")
	c.reg.Gauge("fabric.queue.depth", func() int64 { return int64(c.q.Depth()) })
	c.reg.Gauge("fabric.queue.leased", func() int64 { return int64(c.q.Leased()) })
	c.reg.Gauge("fabric.draining", func() int64 {
		if c.draining {
			return 1
		}
		return 0
	})
	c.reg.Gauge("fabric.drain.ms", func() int64 { return c.drainDur / int64(time.Millisecond) })
}

// publish syncs queue counter deltas into the registry and hands a
// snapshot to the sink. Caller holds mu.
func (c *Coordinator) publish() {
	cur := c.q.Counters()
	add := func(name string, now, last int64) {
		if d := now - last; d > 0 {
			c.evCounters[name].Add(d)
		}
	}
	last := c.lastCounts
	add("fabric.jobs.submitted", cur.Submitted, last.Submitted)
	add("fabric.jobs.completed", cur.Completed, last.Completed)
	add("fabric.jobs.coalesced", cur.Coalesced, last.Coalesced)
	add("fabric.failures", cur.Failures, last.Failures)
	add("fabric.retries", cur.Retries, last.Retries)
	add("fabric.lease.expiries", cur.LeaseExpiries, last.LeaseExpiries)
	add("fabric.dead.letters", cur.DeadLetters, last.DeadLetters)
	add("fabric.stale.ops", cur.StaleOps, last.StaleOps)
	add("fabric.preemptions", cur.Preemptions, last.Preemptions)
	add("fabric.resumes", cur.Resumes, last.Resumes)
	add("fabric.rejected.full", cur.RejectedFull, last.RejectedFull)
	add("fabric.cache.hits", c.cacheHits, c.evCounters["fabric.cache.hits"].Value())
	add("fabric.cache.misses", c.cacheMisses, c.evCounters["fabric.cache.misses"].Value())
	add("fabric.rejected.quota", c.rejectedQuota, c.evCounters["fabric.rejected.quota"].Value())
	c.lastCounts = cur
	if c.opt.Sink != nil {
		c.opt.Sink.PublishFabric(c.reg.Snapshot())
	}
}

// MetricsSnapshot returns the current fabric metrics (for tests and
// the stats endpoint).
func (c *Coordinator) MetricsSnapshot() obs.Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reg.Snapshot()
}

// admit charges tenant one submission against its bucket. Caller
// holds mu. retryAfter is in whole seconds when rejected.
func (c *Coordinator) admit(tenant string, now int64) (ok bool, retryAfter int64) {
	if c.opt.TenantRate <= 0 {
		return true, 0
	}
	burst := float64(c.opt.TenantBurst)
	if burst < 1 {
		burst = 1
	}
	b, found := c.buckets[tenant]
	if !found {
		b = &bucket{tokens: burst, last: now}
		c.buckets[tenant] = b
	}
	b.tokens += float64(now-b.last) / float64(time.Second) * c.opt.TenantRate
	if b.tokens > burst {
		b.tokens = burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	sec := int64((1 - b.tokens) / c.opt.TenantRate)
	return false, sec + 1
}

// Tick runs the reaper: expired leases requeue (or dead-letter) and
// the journal is updated. The server loop calls it periodically; a
// fake-clock test calls it directly.
func (c *Coordinator) Tick(now int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	expired := c.q.ExpireLeases(now)
	for _, j := range expired {
		c.jr.Record(j) //nolint:errcheck // reaper: next transition rewrites
	}
	if len(expired) > 0 {
		c.publish()
	}
	c.checkDrained()
}

// Draining reports whether the coordinator is refusing new work.
func (c *Coordinator) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// Drain stops admission, asks every leased worker to checkpoint and
// hand back (finish-or-checkpoint: a worker that completes first is
// fine too), and waits until no lease remains or the timeout expires.
// All queue state is journaled as it happens, so a drained coordinator
// can stop and a successor resumes the queue, resuming preempted jobs
// from their checkpoints.
func (c *Coordinator) Drain(timeout time.Duration) error {
	c.mu.Lock()
	start := c.now()
	if !c.draining {
		c.draining = true
		for _, j := range c.q.Jobs() {
			if c.q.RequestPreempt(j.ID) {
				c.jr.Record(j) //nolint:errcheck // advisory flag
			}
		}
		c.publish()
	}
	c.checkDrained()
	drained := c.drained
	c.mu.Unlock()

	select {
	case <-drained:
	case <-time.After(timeout):
		return fmt.Errorf("simserv: drain timed out after %v with %d leases live", timeout, c.leasedNow())
	}
	c.mu.Lock()
	c.drainDur = c.now() - start
	c.publish()
	c.mu.Unlock()
	return nil
}

func (c *Coordinator) leasedNow() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.q.Leased()
}

// checkDrained closes the drain gate once no lease is live. Caller
// holds mu.
func (c *Coordinator) checkDrained() {
	if !c.draining || c.q.Leased() != 0 {
		return
	}
	select {
	case <-c.drained:
	default:
		close(c.drained)
	}
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { c.mux.ServeHTTP(w, r) }

func (c *Coordinator) buildMux() {
	m := http.NewServeMux()
	m.HandleFunc("POST /v1/jobs", c.handleSubmit)
	m.HandleFunc("GET /v1/jobs", c.handleList)
	m.HandleFunc("GET /v1/jobs/{id}", c.handleGet)
	m.HandleFunc("POST /v1/claim", c.handleClaim)
	m.HandleFunc("POST /v1/renew", c.handleRenew)
	m.HandleFunc("POST /v1/complete", c.handleComplete)
	m.HandleFunc("POST /v1/fail", c.handleFail)
	m.HandleFunc("POST /v1/preempt", c.handlePreempt)
	m.HandleFunc("GET /v1/stats", c.handleStats)
	c.mux = m
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client went away
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if !decode(w, r, &req) {
		return
	}
	// Validate and fingerprint outside the lock: building the workload
	// image is pure CPU and needs no coordinator state.
	key, err := req.Spec.Key()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	if c.draining {
		writeErr(w, http.StatusServiceUnavailable, "coordinator is draining")
		return
	}
	if ok, after := c.admit(req.Tenant, now); !ok {
		c.rejectedQuota++
		c.publish()
		w.Header().Set("Retry-After", strconv.FormatInt(after, 10))
		writeErr(w, http.StatusTooManyRequests, "tenant %q over submission quota", req.Tenant)
		return
	}
	id := req.ID
	if id == "" {
		c.idSeq++
		id = fmt.Sprintf("j-%06d", c.idSeq)
	}
	spec, err := json.Marshal(req.Spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	j := &queue.Job{ID: id, Tenant: req.Tenant, Spec: spec, Key: key}
	if err := c.q.Submit(j, now); err != nil {
		switch err {
		case queue.ErrFull:
			// Admission backpressure: the queue is at Cap. Suggest a
			// half-lease wait — by then the reaper or a completion has
			// usually moved something.
			after := c.opt.Queue.Lease / (2 * int64(time.Second))
			if after < 1 {
				after = 1
			}
			c.publish()
			w.Header().Set("Retry-After", strconv.FormatInt(after, 10))
			writeErr(w, http.StatusTooManyRequests, "queue at capacity (%d jobs)", c.q.Depth())
		case queue.ErrDuplicate:
			writeErr(w, http.StatusConflict, "job %q already exists", id)
		default:
			writeErr(w, http.StatusBadRequest, "%v", err)
		}
		return
	}

	// Result cache: an identical simulation already ran to completion —
	// complete at admission with the original run's result and metrics.
	if res, hit := c.cache[key]; hit {
		c.cacheHits++
		done, err := c.q.CompleteCached(id, res, now)
		if err == nil {
			for _, dj := range done {
				c.jr.Record(dj) //nolint:errcheck // cache replay is reconstructible
			}
			c.publish()
			writeJSON(w, http.StatusOK, SubmitResponse{ID: id, State: j.State.String(), Result: j.Result})
			return
		}
		// Coalesced onto an in-flight primary (not cache-completable):
		// fall through to the normal accepted path.
	} else {
		c.cacheMisses++
	}
	if err := c.jr.Record(j); err != nil {
		writeErr(w, http.StatusInternalServerError, "journal: %v", err)
		return
	}
	c.publish()
	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: id, State: j.State.String()})
}

func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	defer c.mu.Unlock()
	jobs := c.q.Jobs()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, statusOf(j))
	}
	writeJSON(w, http.StatusOK, out)
}

func (c *Coordinator) handleGet(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.q.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, statusOf(j))
}

func (c *Coordinator) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req ClaimRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Worker == "" {
		writeErr(w, http.StatusBadRequest, "empty worker name")
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		// Drain rejects new work; in-flight renew/complete/preempt
		// still lands.
		w.WriteHeader(http.StatusNoContent)
		return
	}
	j, token, ok := c.q.Claim(req.Worker, c.now())
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	var spec JobSpec
	if err := json.Unmarshal(j.Spec, &spec); err != nil {
		writeErr(w, http.StatusInternalServerError, "corrupt job spec: %v", err)
		return
	}
	if err := c.jr.Record(j); err != nil {
		writeErr(w, http.StatusInternalServerError, "journal: %v", err)
		return
	}
	c.publish()
	writeJSON(w, http.StatusOK, ClaimResponse{
		JobID: j.ID, Token: token, Spec: spec,
		LeaseNS: c.opt.Queue.Lease, Checkpoint: j.Checkpoint, Attempt: j.Attempts,
	})
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req RenewRequest
	if !decode(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	preempt, err := c.q.Renew(req.JobID, req.Worker, req.Token, c.now())
	if err != nil {
		writeJSON(w, http.StatusOK, RenewResponse{Directive: DirectiveLost})
		return
	}
	d := DirectiveOK
	if preempt {
		d = DirectivePreempt
	}
	writeJSON(w, http.StatusOK, RenewResponse{Directive: d})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decode(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	res := queue.Result{Cycles: req.Cycles, Committed: req.Committed, Metrics: req.Metrics}
	done, err := c.q.Complete(req.JobID, req.Worker, req.Token, res, c.now())
	if err != nil {
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	primary := done[0]
	if primary.Key != "" && primary.Result != nil {
		c.cache[primary.Key] = *primary.Result
	}
	for _, j := range done {
		if err := c.jr.Record(j); err != nil {
			writeErr(w, http.StatusInternalServerError, "journal: %v", err)
			return
		}
	}
	c.publish()
	c.checkDrained()
	writeJSON(w, http.StatusOK, map[string]int{"completed": len(done)})
}

func (c *Coordinator) handleFail(w http.ResponseWriter, r *http.Request) {
	var req FailRequest
	if !decode(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	retried, err := c.q.Fail(req.JobID, req.Worker, req.Token, req.Error, req.Stall, c.now())
	if err != nil {
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	if j, ok := c.q.Get(req.JobID); ok {
		c.jr.Record(j) //nolint:errcheck // next transition rewrites
		for _, f := range c.q.Jobs() {
			if f.CoalescedInto == req.JobID && f.State == queue.Dead {
				c.jr.Record(f) //nolint:errcheck // same
			}
		}
	}
	c.publish()
	c.checkDrained()
	writeJSON(w, http.StatusOK, FailResponse{Retried: retried})
}

func (c *Coordinator) handlePreempt(w http.ResponseWriter, r *http.Request) {
	var req PreemptRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Checkpoint == "" {
		writeErr(w, http.StatusBadRequest, "empty checkpoint path")
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.q.Preempt(req.JobID, req.Worker, req.Token, req.Checkpoint, c.now()); err != nil {
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	if j, ok := c.q.Get(req.JobID); ok {
		if err := c.jr.Record(j); err != nil {
			writeErr(w, http.StatusInternalServerError, "journal: %v", err)
			return
		}
	}
	c.publish()
	c.checkDrained()
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	defer c.mu.Unlock()
	writeJSON(w, http.StatusOK, Stats{
		Depth:         c.q.Depth(),
		Leased:        c.q.Leased(),
		Draining:      c.draining,
		Counters:      c.q.Counters(),
		CacheHits:     c.cacheHits,
		CacheMisses:   c.cacheMisses,
		RejectedQuota: c.rejectedQuota,
		DrainMS:       c.drainDur / int64(time.Millisecond),
	})
}

// SpoolDir returns the shared checkpoint spool directory workers
// write preemption checkpoints into.
func (c *Coordinator) SpoolDir() string { return c.jr.SpoolDir() }
