// Package obs is the simulator-wide observability layer: a
// zero-allocation event tracer with per-SM ring buffers, a metrics
// registry of counters, gauges and histograms, and the stall-reason
// taxonomy of the SM issue stage.
//
// Design rules, enforced by tests:
//
//   - The tracer never schedules clock events or otherwise feeds back
//     into the simulation: attaching a tracer must leave the simulated
//     cycle count bit-identical. Components emit only from inside
//     callbacks that already exist.
//   - The disabled path costs one branch: components hold a *Tracer
//     pointer and guard emissions with a nil test; every instrument
//     method is additionally nil-receiver safe.
//   - The enabled hot path does not allocate: events go into
//     preallocated rings, histograms into fixed bucket arrays.
package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Kind identifies one typed trace event.
type Kind uint8

// The event taxonomy. Point events use the instant phase in the Chrome
// export; *Start/*End pairs become async spans.
const (
	// Pipeline events (high volume).
	KFetch     Kind = iota // warp fetched an instruction; A=trace idx, B=block id
	KIssue                 // instruction issued; A=trace idx, B=block id
	KStall                 // issue blocked; A=StallReason, B=trace idx
	KLastCheck             // last TLB check fired; A=trace idx, B=faulted (0/1)
	KCommit                // instruction committed; A=trace idx, B=block id

	// Fault lifecycle.
	KSquash         // faulting instruction squashed; A=trace idx, B=block id
	KReplayFetch    // squashed instruction re-fetched; A=trace idx, B=block id
	KReplayCommit   // replayed instruction committed; A=trace idx, B=block id
	KFaultRaised    // SM raised a page fault; A=page VA, B=fault kind
	KFaultResolved  // a warp's fault resolved; A=outstanding faults left
	KRegionQueued   // fault unit queued a handling region; A=region, B=queue pos
	KRegionResolved // handling region resolved; A=region, B=service latency
	KWalkFault      // page walk detected a fault; A=page VA, B=fault kind

	// Block switching (use case 1).
	KSwitchOut    // block chosen for switch-out; A=block id, B=queue pos
	KSaveStart    // context save began; A=block id, B=bytes
	KSaveEnd      // context save done, block off-chip; A=block id
	KRestoreStart // context restore began; A=block id, B=bytes
	KRestoreEnd   // block active again; A=block id

	// Fault service.
	KMigrateStart // CPU fault service accepted a region; A=region, B=queue wait
	KMigrateEnd   // CPU fault service mapped the region; A=region
	KLocalStart   // GPU-local handler accepted a region; A=region, B=slot wait
	KLocalEnd     // GPU-local handler mapped the region; A=region

	// Device exceptions.
	KExcep // exception record delivered to the host; A=excep kind, B=block id

	NumKinds
)

var kindNames = [NumKinds]string{
	KFetch:          "fetch",
	KIssue:          "issue",
	KStall:          "stall",
	KLastCheck:      "last-check",
	KCommit:         "commit",
	KSquash:         "squash",
	KReplayFetch:    "replay-fetch",
	KReplayCommit:   "replay-commit",
	KFaultRaised:    "fault-raised",
	KFaultResolved:  "fault-resolved",
	KRegionQueued:   "region-queued",
	KRegionResolved: "region-resolved",
	KWalkFault:      "walk-fault",
	KSwitchOut:      "switch-out",
	KSaveStart:      "save-start",
	KSaveEnd:        "save-end",
	KRestoreStart:   "restore-start",
	KRestoreEnd:     "restore-end",
	KMigrateStart:   "migrate-start",
	KMigrateEnd:     "migrate-end",
	KLocalStart:     "local-start",
	KLocalEnd:       "local-end",
	KExcep:          "excep",
}

// String returns the kebab-case event name used by the exports and the
// trace filter.
func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// AllKinds is the filter mask selecting every event kind.
const AllKinds = uint64(1)<<NumKinds - 1

func mask(kinds ...Kind) uint64 {
	var m uint64
	for _, k := range kinds {
		m |= 1 << k
	}
	return m
}

// filterGroups are the named kind sets accepted by ParseFilter, in
// addition to individual kind names.
var filterGroups = map[string]uint64{
	"all":      AllKinds,
	"pipeline": mask(KFetch, KIssue, KStall, KLastCheck, KCommit),
	"stall":    mask(KStall),
	"fault": mask(KSquash, KFaultRaised, KFaultResolved,
		KRegionQueued, KRegionResolved, KWalkFault),
	"replay":  mask(KReplayFetch, KReplayCommit),
	"switch":  mask(KSwitchOut, KSaveStart, KSaveEnd, KRestoreStart, KRestoreEnd),
	"migrate": mask(KMigrateStart, KMigrateEnd),
	"local":   mask(KLocalStart, KLocalEnd),
	"excep":   mask(KExcep),
}

// ParseFilter turns a comma-separated list of group names (pipeline,
// stall, fault, replay, switch, migrate, local, all) and/or individual
// event names (e.g. "commit") into a kind mask. An empty string selects
// everything.
func ParseFilter(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return AllKinds, nil
	}
	var m uint64
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if g, ok := filterGroups[tok]; ok {
			m |= g
			continue
		}
		found := false
		for k := Kind(0); k < NumKinds; k++ {
			if kindNames[k] == tok {
				m |= 1 << k
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("obs: unknown trace filter %q", tok)
		}
	}
	return m, nil
}

// FilterNames lists the group names ParseFilter accepts.
func FilterNames() []string {
	return []string{"all", "pipeline", "stall", "fault", "replay", "switch", "migrate", "local", "excep"}
}

// Event is one trace record. SM is -1 for system-level components (the
// fault unit, fill unit, CPU fault service and local handler). Warp is
// a stable warp identity (blockID*warpsPerBlock + warp index) for
// SM-side events, 0 otherwise. A and B are kind-specific payloads (see
// the Kind constants).
type Event struct {
	Cycle int64
	Seq   uint64 // global emission order, for deterministic merges
	A, B  uint64
	Warp  int32
	SM    int16
	Kind  Kind
}

// String renders one event for stall reports and debugging.
func (e Event) String() string {
	where := "sys"
	if e.SM >= 0 {
		where = fmt.Sprintf("sm%d/w%d", e.SM, e.Warp)
	}
	return fmt.Sprintf("cycle %8d %-8s %-15s a=%#x b=%#x", e.Cycle, where, e.Kind, e.A, e.B)
}

// ring is one fixed-capacity event buffer; n counts events ever written,
// so the oldest retained event is at n-len(buf) when n > len(buf).
type ring struct {
	buf []Event
	n   uint64
}

// Options configures a Tracer.
type Options struct {
	// Filter is the enabled-kind mask (see ParseFilter); 0 means all.
	Filter uint64
	// RingSize is the per-ring event capacity (default 1<<15).
	RingSize int
}

// DefaultRingSize is the per-SM ring capacity when Options.RingSize is
// zero.
const DefaultRingSize = 1 << 15

// Tracer collects events into per-SM ring buffers plus one system ring.
// It is single-threaded, like the simulation that feeds it. The zero
// tracer (or a nil one) drops everything.
type Tracer struct {
	filter uint64
	now    func() int64
	seq    uint64
	// rings[0] is the system ring (SM -1); rings[i+1] belongs to SM i.
	rings    []ring
	ringSize int
}

// New builds a tracer. Call Bind before emitting (the simulator's
// AttachTracer does).
func New(o Options) *Tracer {
	if o.Filter == 0 {
		o.Filter = AllKinds
	}
	if o.RingSize <= 0 {
		o.RingSize = DefaultRingSize
	}
	return &Tracer{filter: o.Filter, ringSize: o.RingSize}
}

// Bind sizes the rings for numSMs SMs and installs the cycle source.
// Rebinding resets the rings.
func (t *Tracer) Bind(numSMs int, now func() int64) {
	t.now = now
	t.rings = make([]ring, numSMs+1)
	for i := range t.rings {
		t.rings[i].buf = make([]Event, t.ringSize)
		t.rings[i].n = 0
	}
	t.seq = 0
}

// Enabled reports whether the kind passes the tracer's filter; a nil
// tracer reports false. Components use it to skip payload computation.
//
//simlint:noalloc
func (t *Tracer) Enabled(k Kind) bool {
	return t != nil && t.filter&(1<<k) != 0
}

// Emit records one event. It is nil-receiver safe, filters by kind, and
// never allocates: the event overwrites the oldest slot of the target
// ring when full. sm is -1 for system components.
//
//simlint:noalloc
func (t *Tracer) Emit(sm int, k Kind, warp int32, a, b uint64) {
	if t == nil || t.filter&(1<<k) == 0 {
		return
	}
	ri := sm + 1
	if ri < 0 || ri >= len(t.rings) {
		if len(t.rings) == 0 {
			return // not bound
		}
		ri = 0
	}
	r := &t.rings[ri]
	t.seq++
	r.buf[r.n%uint64(len(r.buf))] = Event{
		Cycle: t.now(),
		Seq:   t.seq,
		A:     a,
		B:     b,
		Warp:  warp,
		SM:    int16(sm),
		Kind:  k,
	}
	r.n++
}

// EmitStage is a deferred-emission buffer for the parallel tick phase.
// Tracer.Emit assigns the global sequence number from a shared counter,
// so SMs ticking concurrently must not call it directly; each SM
// instead records its emissions into a private EmitStage, and the main
// goroutine flushes the stages in SM index order after the barrier.
// Replaying through Emit in recording order reproduces exactly the
// sequence numbers a sequential tick sweep would have assigned, which
// is what keeps trace exports bit-identical across worker counts.
//
// An EmitStage belongs to one goroutine at a time (the ticking worker
// between barriers, the flushing main goroutine otherwise) and does no
// locking of its own. The buffer is reused across flushes.
type EmitStage struct {
	events []stagedEmit
}

// stagedEmit is one deferred Emit call.
type stagedEmit struct {
	a, b uint64
	warp int32
	sm   int16
	kind Kind
}

// Emit records one deferred Tracer.Emit(sm, k, warp, a, b). The stage
// does not filter; the flush target's filter applies at flush time, so
// staging against a nil or disabled tracer is harmless (callers guard
// with Tracer.Enabled the same way they guard direct emission).
//
//simlint:noalloc
func (st *EmitStage) Emit(sm int, k Kind, warp int32, a, b uint64) {
	if len(st.events) < cap(st.events) {
		st.events = st.events[:len(st.events)+1]
		st.events[len(st.events)-1] = stagedEmit{a, b, warp, int16(sm), k}
		return
	}
	//simlint:ignore noalloc grow path, runs once per high-water mark of staged emissions
	st.events = append(st.events, stagedEmit{a, b, warp, int16(sm), k})
}

// Len returns the number of buffered emissions.
func (st *EmitStage) Len() int { return len(st.events) }

// Cap returns the buffer's retained capacity (its staging high-water
// mark; nonzero once the stage has ever buffered an emission).
func (st *EmitStage) Cap() int { return cap(st.events) }

// FlushTo replays the buffered emissions through t.Emit in recording
// order and resets the stage (retaining capacity). A nil tracer drops
// everything, exactly as direct emission would.
//
//simlint:noalloc
func (st *EmitStage) FlushTo(t *Tracer) {
	for i := range st.events {
		e := &st.events[i]
		t.Emit(int(e.sm), e.kind, e.warp, e.a, e.b)
	}
	st.events = st.events[:0]
}

// Dropped returns how many events were overwritten across all rings.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	var d uint64
	for i := range t.rings {
		r := &t.rings[i]
		if c := uint64(len(r.buf)); r.n > c {
			d += r.n - c
		}
	}
	return d
}

// Events returns every retained event merged across rings in emission
// order. It allocates (export path, not the hot path).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	var total int
	for i := range t.rings {
		r := &t.rings[i]
		n := r.n
		if c := uint64(len(r.buf)); n > c {
			n = c
		}
		total += int(n)
	}
	out := make([]Event, 0, total)
	for i := range t.rings {
		r := &t.rings[i]
		n := r.n
		if c := uint64(len(r.buf)); n > c {
			n = c
		}
		for j := uint64(0); j < n; j++ {
			out = append(out, r.buf[(r.n-n+j)%uint64(len(r.buf))])
		}
	}
	sortEventsBySeq(out)
	return out
}

// LastN returns the newest n events across all rings, oldest first.
func (t *Tracer) LastN(n int) []Event {
	ev := t.Events()
	if len(ev) > n {
		ev = ev[len(ev)-n:]
	}
	return ev
}

// Tail returns the newest n events across all rings, oldest first,
// without merging entire rings: each ring contributes at most its
// newest n events (a superset of the global tail), and the merged
// candidates are cut down to n. Cost is O(rings*n log(rings*n))
// regardless of ring fill, so the live-telemetry publish path can
// afford it every interval. Result equals LastN(n).
func (t *Tracer) Tail(n int) []Event {
	if t == nil || n <= 0 {
		return nil
	}
	out := make([]Event, 0, len(t.rings)*n)
	for i := range t.rings {
		r := &t.rings[i]
		have := r.n
		if c := uint64(len(r.buf)); have > c {
			have = c
		}
		take := uint64(n)
		if take > have {
			take = have
		}
		for j := uint64(0); j < take; j++ {
			out = append(out, r.buf[(r.n-take+j)%uint64(len(r.buf))])
		}
	}
	sortEventsBySeq(out)
	if len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// sortEventsBySeq sorts by the global sequence number (a total order).
func sortEventsBySeq(ev []Event) {
	sort.Slice(ev, func(i, j int) bool { return ev[i].Seq < ev[j].Seq })
}
