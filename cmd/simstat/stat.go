package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"gpues"
)

// loadTable reads and decodes one NDJSON series file.
func loadTable(path string) (*gpues.SeriesTable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := gpues.ReadSeriesNDJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// topIntervals picks the n intervals with the heaviest top-stall
// concentration, returned in cycle order.
func topIntervals(iv []gpues.IntervalStats, n int) []gpues.IntervalStats {
	byShare := append([]gpues.IntervalStats(nil), iv...)
	sort.SliceStable(byShare, func(i, j int) bool {
		return byShare[i].TopStallShare > byShare[j].TopStallShare
	})
	if len(byShare) > n {
		byShare = byShare[:n]
	}
	sort.Slice(byShare, func(i, j int) bool { return byShare[i].Cycle < byShare[j].Cycle })
	return byShare
}

// report is the JSON shape of the single-file mode.
type report struct {
	File      string                `json:"file"`
	Samples   int                   `json:"samples"`
	Every     int64                 `json:"every"`
	Stats     gpues.SeriesStats     `json:"stats"`
	Intervals []gpues.IntervalStats `json:"top_intervals"`
}

// writeReport renders the run-level analytics of one series.
func writeReport(w io.Writer, path string, t *gpues.SeriesTable, top int, asJSON bool) error {
	st := gpues.SummarizeSeries(t)
	iv := topIntervals(gpues.AnalyzeSeries(t), top)
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(report{File: path, Samples: t.Len(), Every: t.Every, Stats: st, Intervals: iv})
	}
	fmt.Fprintf(w, "series        %s: %d samples every %d cycles, %d cycles total\n",
		path, st.Samples, t.Every, st.Cycles)
	fmt.Fprintf(w, "ipc           steady %.3f, mean %.3f\n", st.SteadyIPC, st.MeanIPC)
	if st.PeakStallReason != "" {
		fmt.Fprintf(w, "peak stall    %s %.1f%% of stall cycles at cycle %d\n",
			st.PeakStallReason, 100*st.PeakStallShare, st.PeakStallCycle)
	}
	if st.TotalFaults > 0 {
		fmt.Fprintf(w, "faults        %d raised in %d phase(s)\n", st.TotalFaults, len(st.FaultPhases))
		for i, p := range st.FaultPhases {
			fmt.Fprintf(w, "  phase %-2d    cycles %d-%d: %d faults, mean latency %.0f cycles, ipc %.3f\n",
				i+1, p.FromCycle, p.ToCycle, p.Faults, p.MeanLatency, p.IPC)
		}
	}
	if len(iv) > 0 {
		fmt.Fprintf(w, "top %d intervals by stall share:\n", len(iv))
		fmt.Fprintf(w, "  %12s %8s %10s %6s  %s\n", "cycle", "ipc", "fault/kcyc", "occ", "top stall")
		for _, s := range iv {
			stall := "-"
			if s.TopStall != "" {
				stall = fmt.Sprintf("%s %.1f%%", s.TopStall, 100*s.TopStallShare)
			}
			fmt.Fprintf(w, "  %12d %8.3f %10.2f %6d  %s\n",
				s.Cycle, s.IPC, s.FaultRate, s.Occupancy, stall)
		}
	}
	return nil
}

// colDiff is one shared column's A/B comparison.
type colDiff struct {
	Column string `json:"column"`
	// FinalA/FinalB are the column's absolute values at each run's last
	// sample; Delta is B-A.
	FinalA int64 `json:"final_a"`
	FinalB int64 `json:"final_b"`
	Delta  int64 `json:"delta"`
	// MaxRelPct is the worst relative deviation (percent) across the
	// cycle-aligned samples, and AtCycle where it happened.
	MaxRelPct float64 `json:"max_rel_pct"`
	AtCycle   int64   `json:"at_cycle"`
}

// diffResult is the A/B regression comparison of two series.
type diffResult struct {
	// Aligned counts samples present at the same cycle in both runs;
	// OnlyA/OnlyB count samples without a partner.
	Aligned int `json:"aligned"`
	OnlyA   int `json:"only_a"`
	OnlyB   int `json:"only_b"`
	// CyclesA/CyclesB are the final sampled cycles (a mismatch means
	// the runs ended at different times — itself a regression).
	CyclesA int64 `json:"cycles_a"`
	CyclesB int64 `json:"cycles_b"`
	// MissingInA/MissingInB are columns the other run has exclusively.
	MissingInA []string `json:"missing_in_a,omitempty"`
	MissingInB []string `json:"missing_in_b,omitempty"`
	// Cols holds every shared column, worst deviation first.
	Cols []colDiff `json:"columns"`
}

// maxRelPct is the single worst deviation across all shared columns.
func (d *diffResult) maxRelPct() float64 {
	if len(d.Cols) == 0 {
		return 0
	}
	return d.Cols[0].MaxRelPct
}

// exceeds decides the gate: with a non-negative threshold, differing
// run lengths, missing columns, or any column deviating beyond the
// threshold percent fail the diff.
func (d *diffResult) exceeds(thresholdPct float64) bool {
	if thresholdPct < 0 {
		return false
	}
	if d.CyclesA != d.CyclesB {
		return true
	}
	if len(d.MissingInA)+len(d.MissingInB) > 0 {
		return true
	}
	return d.maxRelPct() > thresholdPct
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// relPct is |a-b| as a percentage of the larger magnitude (0 when both
// are 0).
func relPct(a, b int64) float64 {
	if a == b {
		return 0
	}
	den := abs64(a)
	if bb := abs64(b); bb > den {
		den = bb
	}
	return 100 * float64(abs64(a-b)) / float64(den)
}

// diffSeries aligns two decoded series by cycle and compares every
// shared column. A is the reference run.
func diffSeries(a, b *gpues.SeriesTable) diffResult {
	var d diffResult
	if n := a.Len(); n > 0 {
		d.CyclesA = a.Cycles[n-1]
	}
	if n := b.Len(); n > 0 {
		d.CyclesB = b.Cycles[n-1]
	}

	// Cycle alignment: two-pointer merge over the sorted sample stamps.
	type pair struct{ ai, bi int }
	var pairs []pair
	for ai, bi := 0, 0; ai < a.Len() && bi < b.Len(); {
		switch {
		case a.Cycles[ai] == b.Cycles[bi]:
			pairs = append(pairs, pair{ai, bi})
			ai++
			bi++
		case a.Cycles[ai] < b.Cycles[bi]:
			ai++
		default:
			bi++
		}
	}
	d.Aligned = len(pairs)
	d.OnlyA = a.Len() - d.Aligned
	d.OnlyB = b.Len() - d.Aligned

	bCols := map[string]bool{}
	for _, n := range b.Names {
		bCols[n] = true
	}
	aCols := map[string]bool{}
	for _, n := range a.Names {
		aCols[n] = true
		if !bCols[n] {
			d.MissingInB = append(d.MissingInB, n)
		}
	}
	for _, n := range b.Names {
		if !aCols[n] {
			d.MissingInA = append(d.MissingInA, n)
		}
	}

	for _, name := range a.Names {
		if !bCols[name] {
			continue
		}
		ca, cb := a.Col(name), b.Col(name)
		cd := colDiff{Column: name}
		if len(ca) > 0 {
			cd.FinalA = ca[len(ca)-1]
		}
		if len(cb) > 0 {
			cd.FinalB = cb[len(cb)-1]
		}
		cd.Delta = cd.FinalB - cd.FinalA
		for _, p := range pairs {
			if pct := relPct(ca[p.ai], cb[p.bi]); pct > cd.MaxRelPct {
				cd.MaxRelPct = pct
				cd.AtCycle = a.Cycles[p.ai]
			}
		}
		d.Cols = append(d.Cols, cd)
	}
	sort.SliceStable(d.Cols, func(i, j int) bool { return d.Cols[i].MaxRelPct > d.Cols[j].MaxRelPct })
	return d
}

// writeDiff renders the A/B comparison.
func writeDiff(w io.Writer, pathA, pathB string, d diffResult, top int, asJSON bool) error {
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(&d)
	}
	fmt.Fprintf(w, "A             %s (ends at cycle %d)\n", pathA, d.CyclesA)
	fmt.Fprintf(w, "B             %s (ends at cycle %d)\n", pathB, d.CyclesB)
	fmt.Fprintf(w, "aligned       %d samples (%d only in A, %d only in B)\n", d.Aligned, d.OnlyA, d.OnlyB)
	if d.CyclesA != d.CyclesB {
		fmt.Fprintf(w, "REGRESSION    runs end %+d cycles apart\n", d.CyclesB-d.CyclesA)
	}
	for _, n := range d.MissingInA {
		fmt.Fprintf(w, "missing in A  %s\n", n)
	}
	for _, n := range d.MissingInB {
		fmt.Fprintf(w, "missing in B  %s\n", n)
	}
	if d.maxRelPct() == 0 {
		fmt.Fprintf(w, "columns       all %d shared columns identical across aligned samples\n", len(d.Cols))
		return nil
	}
	shown := d.Cols
	if len(shown) > top {
		shown = shown[:top]
	}
	fmt.Fprintf(w, "top %d columns by deviation:\n", len(shown))
	fmt.Fprintf(w, "  %-32s %14s %14s %10s %9s %12s\n", "column", "final A", "final B", "delta", "max dev", "at cycle")
	for _, c := range shown {
		fmt.Fprintf(w, "  %-32s %14d %14d %+10d %8.3f%% %12d\n",
			c.Column, c.FinalA, c.FinalB, c.Delta, c.MaxRelPct, c.AtCycle)
	}
	return nil
}
