package sm

import (
	"gpues/internal/config"
	"gpues/internal/isa"
	"gpues/internal/obs"
	"gpues/internal/tlb"
	"gpues/internal/vm"
)

// startMem begins executing a global memory instruction: the coalescer
// emits one request per unique line (already computed by the trace
// generator), each request checks the L1 TLB at one per cycle, and
// translated requests access the cache hierarchy. The cycle the final
// request finishes translation is the instruction's "last TLB check"
// (Figure 5) — the earliest point it is known not to fault.
func (s *SM) startMem(f *flight) {
	lines := f.ti.Lines
	if len(lines) == 0 {
		// All lanes predicated off: nothing to access.
		s.q.After(1, f.commitFn)
		return
	}
	n := len(lines)
	if cap(f.reqs) >= n {
		f.reqs = f.reqs[:n]
	} else {
		f.reqs = make([]memReq, n)
	}
	for i := range lines {
		f.reqs[i] = memReq{line: lines[i], idx: int32(i)}
	}
	// Extend the per-index closure set to cover this instruction's
	// request count; the closures dereference &f.reqs[i] when they fire,
	// so they survive reqs reslicing across flight reuses.
	for i := len(f.trFns); i < n; i++ {
		i := i
		f.trFns = append(f.trFns, func() { s.translate(f, &f.reqs[i]) })
		f.tlbFns = append(f.tlbFns, func(res tlb.Result) {
			s.wake()
			s.onTranslated(f, &f.reqs[i], res)
		})
		f.accFns = append(f.accFns, func() { s.accessDone(f, &f.reqs[i]) })
		f.accRetry = append(f.accRetry, func() { s.access(f, &f.reqs[i]) })
	}
	f.tlbRem = n
	f.reqRem = n
	s.stats.MemRequests += int64(n)
	for i := 0; i < n; i++ {
		s.q.After(int64(i)+1, f.trFns[i])
	}
}

// translate runs the L1 TLB lookup for one request, retrying while the
// TLB's miss resources are full.
//
//simlint:noalloc
func (s *SM) translate(f *flight, r *memReq) {
	if f.squashed {
		// The instruction was squashed after a fault; drop the request.
		return
	}
	page := r.line &^ (uint64(s.cfg.System.PageSize) - 1)
	ok := s.l1tlb.Lookup(page, f.tlbFns[r.idx])
	if !ok {
		s.l1tlb.OnFree(f.trFns[r.idx])
	}
}

//simlint:noalloc
func (s *SM) onTranslated(f *flight, r *memReq, res tlb.Result) {
	if f.squashed {
		return
	}
	first := r.state == reqPending
	if res.Present {
		r.state = reqTranslated
		s.access(f, r)
	} else {
		r.state = reqFaulted
		r.faultKind = res.Fault
		f.faulted = true
	}
	// Baseline stall-on-fault re-translations arrive after the last TLB
	// check already fired; only first-pass results count toward it.
	if first && f.tlbRem > 0 {
		f.tlbRem--
		if f.tlbRem == 0 {
			s.lastTLBCheck(f)
		}
	}
}

// lastTLBCheck fires when every coalesced request has its first
// translation result. With no faults this is the instruction's
// fault-safe point: wd-lastcheck re-enables fetch, the replay-queue
// scheme releases the deferred source operands, and the operand log
// frees the instruction's entries. With faults, the scheme-specific
// fault path runs.
//
//simlint:noalloc
func (s *SM) lastTLBCheck(f *flight) {
	w := f.w
	s.event("lastcheck", w, f.tIdx)
	if s.tr != nil {
		var faulted uint64
		if f.faulted {
			faulted = 1
		}
		s.tr.Emit(s.ID, obs.KLastCheck, s.warpID(w), uint64(f.tIdx), faulted)
	}
	if !f.faulted {
		if f.wdOwner && s.cfg.Scheme == config.WarpDisableLastCheck && w.fetchOwner == f {
			s.clearFetchBlock(w)
		}
		if s.cfg.Scheme == config.ReplayQueue {
			w.releaseSources(f)
		}
		if s.cfg.Scheme == config.OperandLog && f.logHeld > 0 {
			w.block.logUsed -= f.logHeld
			f.logHeld = 0
		}
		return
	}
	s.stats.Faults++
	if s.cfg.Scheme == config.Baseline {
		s.stallOnFault(f)
		return
	}
	s.squashAndRaise(f)
}

// access sends a translated request into the cache hierarchy, retrying
// while the L1 MSHRs are full. Loads wait for data; stores and atomics
// are write accesses (write-through at L1).
//
//simlint:noalloc
func (s *SM) access(f *flight, r *memReq) {
	if f.squashed {
		return
	}
	write := f.ti.Static.Op == isa.OpStGlobal || f.ti.Static.Op == isa.OpAtomGlobal
	ok := s.l1.Access(r.line, write, f.accFns[r.idx])
	if !ok {
		s.l1.OnFree(f.accRetry[r.idx])
	}
}

// accessDone is the cache-hierarchy completion for one request.
//
//simlint:noalloc
func (s *SM) accessDone(f *flight, r *memReq) {
	s.wake()
	if f.squashed || r.state == reqDone {
		return
	}
	r.state = reqDone
	f.reqRem--
	if f.reqRem == 0 && !f.faulted {
		s.q.After(1, f.commitFn)
	}
}

// stallOnFault implements the baseline behaviour (Section 2.3): the
// faulting instruction stays in the pipeline while the CPU resolves the
// fault; afterwards only the memory request is replayed (re-translated,
// now hitting), not the instruction.
func (s *SM) stallOnFault(f *flight) {
	for i := range f.reqs {
		r := &f.reqs[i]
		if r.state != reqFaulted {
			continue
		}
		page := r.line &^ (uint64(s.cfg.System.PageSize) - 1)
		s.sink.RaiseFault(page, r.faultKind, s.ID, func() {
			s.wake()
			if f.squashed {
				return
			}
			r.state = reqPending
			s.translate(f, r)
		})
	}
	// Faulted requests will re-translate; clear the flag so the final
	// completion check in access() can commit the instruction.
	f.faulted = false
}

// squashAndRaise implements the preemptible fault path (Section 3): the
// faulting instruction is squashed — scoreboard holds and pipeline
// resources released — and recorded for replay; the warp stops fetching
// until all its faults resolve. Under the warp-disable schemes the
// squashed instruction is by construction the youngest in flight; under
// replay-queue/operand-log older non-faulted instructions keep draining.
func (s *SM) squashAndRaise(f *flight) {
	w := f.w
	f.squashed = true
	s.stats.Squashed++
	s.event("squash", w, f.tIdx)
	s.trace(obs.KSquash, w, f.tIdx)
	w.releaseDest(f)
	if s.cfg.Scheme == config.ReplayQueue && len(f.srcHeld) > 0 {
		// Replay-queue: the faulted instruction's source holds survive
		// the fault, keeping younger writers blocked (WAR) until the
		// replay passes its TLB checks.
		if w.heldSrcs == nil {
			w.heldSrcs = make(map[int32][]isa.Reg)
		}
		w.heldSrcs[f.tIdx] = append([]isa.Reg(nil), f.srcHeld...)
		f.srcHeld = f.srcHeld[:0]
	} else {
		w.releaseSources(f)
	}
	w.inFlight--
	// The operand log keeps the squashed instruction's entries: the
	// replay reads its operands from the log (Figure 8b). They free at
	// the replay's successful last TLB check.
	w.insertReplay(f.tIdx)
	s.met.ReplayOcc.Observe(int64(len(w.replay)))
	if w.fetchOwner == f {
		s.clearFetchBlock(w)
	}
	// Revert the program counter to the oldest non-issued instruction:
	// a younger instruction still in the fetch buffer is flushed so the
	// replay is fetched first (it may be WAR-blocked by the replay's
	// retained source holds, and must in any case run before younger
	// code).
	if buf := w.buf; buf != nil {
		if buf.isReplay {
			w.insertReplay(buf.tIdx)
			s.met.ReplayOcc.Observe(int64(len(w.replay)))
		} else if int(buf.tIdx) < w.cursor {
			w.cursor = int(buf.tIdx)
		}
		if w.fetchOwner == buf {
			s.clearFetchBlock(w)
		}
		w.buf = nil
		s.clrBuf(s.warpIndex(w))
		// The flushed flight never issued, so nothing was scheduled
		// against it; it can go straight back to the pool.
		s.freeFlight(buf)
	}
	// Collect the distinct faulting pages.
	kinds := make(map[uint64]vm.FaultKind)
	var pages []uint64
	for i := range f.reqs {
		r := &f.reqs[i]
		if r.state == reqFaulted {
			page := r.line &^ (uint64(s.cfg.System.PageSize) - 1)
			if _, seen := kinds[page]; !seen {
				kinds[page] = r.faultKind
				pages = append(pages, page)
			}
		}
	}
	if len(pages) > 0 && w.faultsOutstanding == 0 {
		w.faultWaitStart = s.q.Now()
	}
	w.faultsOutstanding += len(pages)
	b := w.block
	b.pendingFaults += len(pages)
	maxPos := 0
	for _, page := range pages {
		page := page
		if s.tr != nil {
			s.tr.Emit(s.ID, obs.KFaultRaised, s.warpID(w), page, uint64(kinds[page]))
		}
		pos := s.sink.RaiseFault(page, kinds[page], s.ID, func() {
			s.wake()
			w.faultsOutstanding--
			b.pendingFaults--
			if s.tr != nil {
				s.tr.Emit(s.ID, obs.KFaultResolved, s.warpID(w), page, uint64(w.faultsOutstanding))
			}
			if w.faultsOutstanding == 0 {
				s.stats.Stalls[obs.StallFaultWait] += s.q.Now() - w.faultWaitStart
			}
			s.onFaultResolved(w, b)
		})
		if pos > maxPos {
			maxPos = pos
		}
	}
	s.afterDrainStep(b)
	s.checkWarpDone(w)
	s.maybeSwitchOut(b, maxPos)
}

// onFaultResolved resumes a warp (or wakes an off-chip block) when one
// of its faults resolves.
func (s *SM) onFaultResolved(w *warpRT, b *blockRT) {
	if b.state == blockOffChip && b.pendingFaults == 0 {
		// A slot may already be free; restore eagerly.
		for slot := range s.slots {
			if s.slots[slot] == nil {
				s.restoreReadyBlock(slot)
				return
			}
		}
	}
	s.checkWarpDone(w)
}
