// Command simserver is the simulation-as-a-service fabric binary: a
// job coordinator, a pull worker, or a submit client, depending on its
// flags.
//
// Coordinator (with optional in-process workers):
//
//	simserver -listen :8990 -journal /var/run/gpues -workers 4
//
// Standalone worker attached to a coordinator:
//
//	simserver -join http://127.0.0.1:8990 -name w1 -spool /var/run/gpues/spool
//
// Submit a job and wait for its result:
//
//	simserver -join http://127.0.0.1:8990 -submit '{"benchmark":"sgemm","scale":2,"scheme":"replay-queue"}' -wait
//
// SIGTERM or SIGINT drains a coordinator gracefully: new submissions
// are rejected, leased workers are asked to checkpoint and hand back
// (finish-or-checkpoint), and the journal holds the full queue state
// for the next coordinator. A SIGKILL loses nothing either — every
// transition was journaled before it was acknowledged — it just skips
// the checkpoint courtesy.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"gpues/internal/obsrv"
	"gpues/internal/simserv"
	"gpues/internal/simserv/queue"
)

// options holds every flag value; validate checks them up front so a
// bad value fails fast with exit 2, before any state is touched.
type options struct {
	listen       string
	journal      string
	workers      int
	lease        time.Duration
	maxRetries   int
	queueCap     int
	drainTimeout time.Duration
	backoff      time.Duration
	seed         int64
	tenantRate   float64
	tenantBurst  int
	httpAddr     string

	join   string
	name   string
	spool  string
	slice  int64
	poll   time.Duration
	submit string
	tenant string
	wait   bool
}

// validate enforces the flag contract. It returns the message to
// print before exiting 2; the empty string means the options are
// sound.
func (o *options) validate() string {
	switch {
	case o.listen == "" && o.join == "":
		return "one of -listen (coordinator) or -join (worker/client) is required"
	case o.listen != "" && o.join != "":
		return "-listen and -join are mutually exclusive"
	}
	if o.listen != "" {
		if err := obsrv.ValidateAddr(o.listen); err != nil {
			return fmt.Sprintf("-listen: %v", err)
		}
		if o.journal == "" {
			return "-listen needs -journal (the crash-only queue state directory)"
		}
		if o.submit != "" || o.wait {
			return "-submit/-wait need -join, not -listen"
		}
	}
	if o.join != "" {
		u, err := url.Parse(o.join)
		if err != nil || u.Scheme != "http" && u.Scheme != "https" || u.Host == "" {
			return fmt.Sprintf("-join %q is not an http(s) URL", o.join)
		}
		if o.workers != defaultWorkers() {
			return "-workers runs in-process workers and needs -listen; a -join worker is one process"
		}
	}
	if o.workers < 0 || o.workers > 4*runtime.NumCPU() {
		return fmt.Sprintf("-workers %d out of range [0,%d] (4×NumCPU)", o.workers, 4*runtime.NumCPU())
	}
	if o.lease <= 0 {
		return fmt.Sprintf("-lease %v must be positive", o.lease)
	}
	if o.maxRetries < 0 {
		return fmt.Sprintf("-max-retries %d must be non-negative", o.maxRetries)
	}
	if o.queueCap < 0 {
		return fmt.Sprintf("-queue-cap %d must be non-negative (0 = unlimited)", o.queueCap)
	}
	if o.drainTimeout <= 0 {
		return fmt.Sprintf("-drain-timeout %v must be positive", o.drainTimeout)
	}
	if o.backoff < 0 {
		return fmt.Sprintf("-backoff %v must be non-negative", o.backoff)
	}
	if o.tenantRate < 0 {
		return fmt.Sprintf("-tenant-rate %v must be non-negative (0 = no quotas)", o.tenantRate)
	}
	if o.tenantRate > 0 && o.tenantBurst < 1 {
		return fmt.Sprintf("-tenant-burst %d must be >= 1 with -tenant-rate", o.tenantBurst)
	}
	if o.httpAddr != "" {
		if err := obsrv.ValidateAddr(o.httpAddr); err != nil {
			return fmt.Sprintf("-http: %v", err)
		}
	}
	if o.slice <= 0 {
		return fmt.Sprintf("-slice %d must be positive", o.slice)
	}
	if o.poll <= 0 {
		return fmt.Sprintf("-poll %v must be positive", o.poll)
	}
	if o.submit != "" {
		var spec simserv.JobSpec
		if err := json.Unmarshal([]byte(o.submit), &spec); err != nil {
			return fmt.Sprintf("-submit is not a JobSpec JSON document: %v", err)
		}
	}
	if o.wait && o.submit == "" {
		return "-wait needs -submit"
	}
	return ""
}

func defaultWorkers() int { return 0 }

func parseFlags(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("simserver", flag.ContinueOnError)
	fs.StringVar(&o.listen, "listen", "", "coordinator listen address (host:port)")
	fs.StringVar(&o.journal, "journal", "", "coordinator journal directory (crash-only queue state)")
	fs.IntVar(&o.workers, "workers", defaultWorkers(), "in-process workers to run alongside the coordinator")
	fs.DurationVar(&o.lease, "lease", 30*time.Second, "job lease duration; workers renew inside it")
	fs.IntVar(&o.maxRetries, "max-retries", 2, "failed or expired attempts before a job dead-letters")
	fs.IntVar(&o.queueCap, "queue-cap", 256, "resident job cap; submissions beyond it get 429 (0 = unlimited)")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM")
	fs.DurationVar(&o.backoff, "backoff", 2*time.Second, "base retry backoff (doubles per retry, jittered)")
	fs.Int64Var(&o.seed, "seed", 1, "backoff jitter seed")
	fs.Float64Var(&o.tenantRate, "tenant-rate", 0, "per-tenant submissions per second (0 = no quotas)")
	fs.IntVar(&o.tenantBurst, "tenant-burst", 8, "per-tenant submission burst (with -tenant-rate)")
	fs.StringVar(&o.httpAddr, "http", "", "serve fabric metrics (/metrics, /status) on this host:port")
	fs.StringVar(&o.join, "join", "", "coordinator URL to attach to as a worker or client")
	fs.StringVar(&o.name, "name", "", "worker name (default worker-<pid>)")
	fs.StringVar(&o.spool, "spool", "", "checkpoint spool directory (default <journal>/spool or ./spool)")
	fs.Int64Var(&o.slice, "slice", 50_000, "cycles simulated between lease renewals")
	fs.DurationVar(&o.poll, "poll", 200*time.Millisecond, "idle worker claim interval")
	fs.StringVar(&o.submit, "submit", "", "submit this JobSpec JSON and exit (with -join)")
	fs.StringVar(&o.tenant, "tenant", "", "tenant name for -submit")
	fs.BoolVar(&o.wait, "wait", false, "with -submit: poll until the job is done or dead")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return o, nil
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	if msg := o.validate(); msg != "" {
		fmt.Fprintln(os.Stderr, msg)
		os.Exit(2)
	}
	if o.name == "" {
		o.name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	var code int
	switch {
	case o.listen != "":
		code = runCoordinator(o)
	case o.submit != "":
		code = runSubmit(o)
	default:
		code = runWorker(o)
	}
	os.Exit(code)
}

func runCoordinator(o *options) int {
	var sink simserv.FabricSink
	var obsSrv *obsrv.Server
	if o.httpAddr != "" {
		obsSrv = obsrv.New(o.httpAddr)
		addr, err := obsSrv.Start()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("metrics on http://%s/metrics\n", addr)
		sink = obsSrv
	}
	coord, err := simserv.NewCoordinator(simserv.Options{
		Queue: queue.Config{
			Cap:        o.queueCap,
			Lease:      int64(o.lease),
			MaxRetries: o.maxRetries,
			Backoff:    int64(o.backoff),
			Seed:       o.seed,
		},
		JournalDir:  o.journal,
		TenantRate:  o.tenantRate,
		TenantBurst: o.tenantBurst,
		Sink:        sink,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	srv := &http.Server{Handler: coord}
	go srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	fmt.Printf("coordinator on http://%s (journal %s)\n", ln.Addr(), o.journal)

	// Reaper: reclaim expired leases well inside one lease period.
	reapCtx, stopReaper := context.WithCancel(context.Background())
	go func() {
		t := time.NewTicker(o.lease / 4)
		defer t.Stop()
		for {
			select {
			case <-reapCtx.Done():
				return
			case now := <-t.C:
				coord.Tick(now.UnixNano())
			}
		}
	}()

	// In-process workers share the coordinator's spool via loopback
	// HTTP: the same claim/lease protocol external workers speak.
	wctx, stopWorkers := context.WithCancel(context.Background())
	base := fmt.Sprintf("http://%s", ln.Addr())
	for i := 1; i <= o.workers; i++ {
		w := &simserv.Worker{
			Client:      &simserv.Client{Base: base},
			Name:        fmt.Sprintf("%s-local-%d", o.name, i),
			Spool:       coord.SpoolDir(),
			SliceCycles: o.slice,
			Poll:        o.poll,
			Log:         func(s string) { fmt.Println(s) },
		}
		go w.Run(wctx) //nolint:errcheck // Run returns nil on cancel
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	<-sig
	fmt.Printf("draining (budget %v)...\n", o.drainTimeout)
	// Order matters: drain first — workers must stay alive to honor
	// the checkpoint-and-hand-back directives — then stop them, then
	// close the listeners.
	if err := coord.Drain(o.drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		stopWorkers()
		stopReaper()
		srv.Close()
		return 1
	}
	stopWorkers()
	stopReaper()
	srv.Close()
	if obsSrv != nil {
		obsSrv.Close()
	}
	fmt.Println("drained; journal holds the queue state")
	return 0
}

func runWorker(o *options) int {
	spool := o.spool
	if spool == "" {
		spool = "spool"
	}
	w := &simserv.Worker{
		Client:      &simserv.Client{Base: o.join},
		Name:        o.name,
		Spool:       spool,
		SliceCycles: o.slice,
		Poll:        o.poll,
		Log:         func(s string) { fmt.Println(s) },
	}
	ctx, cancel := context.WithCancel(context.Background())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	go func() { <-sig; cancel() }()
	fmt.Printf("worker %s pulling from %s\n", o.name, o.join)
	w.Run(ctx) //nolint:errcheck // Run returns nil on cancel
	return 0
}

func runSubmit(o *options) int {
	var spec simserv.JobSpec
	if err := json.Unmarshal([]byte(o.submit), &spec); err != nil {
		fmt.Fprintln(os.Stderr, err) // unreachable after validate; belt and braces
		return 1
	}
	cl := &simserv.Client{Base: o.join}
	resp, err := cl.Submit(simserv.SubmitRequest{Tenant: o.tenant, Spec: spec})
	if err != nil {
		if ra := simserv.RetryAfter(err); ra != "" {
			fmt.Fprintf(os.Stderr, "%v (retry after %ss)\n", err, ra)
		} else {
			fmt.Fprintln(os.Stderr, err)
		}
		return 1
	}
	if !o.wait {
		json.NewEncoder(os.Stdout).Encode(resp) //nolint:errcheck // stdout
		return 0
	}
	for {
		st, err := cl.Job(resp.ID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		switch st.State {
		case "done":
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			enc.Encode(st) //nolint:errcheck // stdout
			return 0
		case "dead":
			fmt.Fprintf(os.Stderr, "job %s dead-lettered: %s\n", st.ID, st.LastError)
			if st.StallReport != "" {
				fmt.Fprintln(os.Stderr, st.StallReport)
			}
			return 1
		}
		time.Sleep(o.poll)
	}
}
