package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"sync"
)

// Fact is a typed datum an analyzer attaches to a types.Object so later
// passes — over the same package or over packages that import it — can
// consume it. This is the interprocedural backbone: a pass summarizes
// what it learned about each exported function or type as facts, the
// driver serializes them across package boundaries (the .vetx files of
// the go vet protocol, or an in-memory store in standalone mode), and
// downstream passes import them instead of re-reading source they may
// not even have.
//
// A Fact implementation must be a pointer to a gob-encodable struct and
// must be listed in its Analyzer's FactTypes so drivers can register it
// for decoding.
type Fact interface {
	// AFact is a marker method; it does nothing.
	AFact()
}

// FactStore holds every (object, fact) pair produced during one driver
// invocation. One store is shared by all passes of a run, so facts flow
// from dependency passes to dependent ones; drivers serialize the
// per-package slice of it between processes.
type FactStore struct {
	mu sync.Mutex
	m  map[factKey]Fact
}

// factKey identifies one fact: facts of distinct types coexist on the
// same object (each analyzer defines its own fact types, so analyzer
// scoping falls out of type identity).
type factKey struct {
	obj types.Object
	t   reflect.Type
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: map[factKey]Fact{}}
}

// Export records fact for obj, replacing any previous fact of the same
// type.
func (s *FactStore) Export(obj types.Object, fact Fact) {
	if obj == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[factKey{obj, reflect.TypeOf(fact)}] = fact
}

// Import copies the stored fact of fact's type for obj into fact,
// reporting whether one was found. fact must be a pointer to a struct.
func (s *FactStore) Import(obj types.Object, fact Fact) bool {
	if obj == nil {
		return false
	}
	s.mu.Lock()
	got, ok := s.m[factKey{obj, reflect.TypeOf(fact)}]
	s.mu.Unlock()
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// ObjectFact is one (object, fact) pair, as returned by All.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// All returns every stored fact assignable to the given prototype's
// type, in a deterministic (object-path-sorted) order.
func (s *FactStore) All(prototype Fact) []ObjectFact {
	want := reflect.TypeOf(prototype)
	s.mu.Lock()
	var out []ObjectFact
	for k, f := range s.m {
		if k.t == want {
			out = append(out, ObjectFact{Object: k.obj, Fact: f})
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		pi, pj := objSortKey(out[i].Object), objSortKey(out[j].Object)
		return pi < pj
	})
	return out
}

// objSortKey orders facts deterministically across runs.
func objSortKey(obj types.Object) string {
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	path, _ := ObjectPath(obj)
	return pkg + "\x00" + path + "\x00" + obj.Name()
}

// ---- wire format ----

// factRecord is the serialized form of one fact: the owning package and
// object are stored as paths so the decoder can resolve them against
// export data (vettool mode) or a source-loaded package (standalone).
type factRecord struct {
	PkgPath string
	ObjPath string
	Fact    Fact
}

// RegisterFactTypes makes an analyzer's fact types known to gob. The
// drivers call it once per analyzer before any encode or decode.
func RegisterFactTypes(a *Analyzer) {
	for _, f := range a.FactTypes {
		gob.Register(f)
	}
}

// EncodeFacts serializes every fact owned by one of the given packages
// (plus, when reexportAll is set, every other fact in the store — the
// vettool protocol wants each .vetx to carry its transitive closure so
// facts survive deep import chains).
func (s *FactStore) EncodeFacts(own map[*types.Package]bool, reexportAll bool) ([]byte, error) {
	s.mu.Lock()
	var recs []factRecord
	for k, f := range s.m {
		pkg := k.obj.Pkg()
		if pkg == nil {
			continue
		}
		if !reexportAll && !own[pkg] {
			continue
		}
		path, ok := ObjectPath(k.obj)
		if !ok {
			continue
		}
		recs = append(recs, factRecord{PkgPath: pkg.Path(), ObjPath: path, Fact: f})
	}
	s.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].PkgPath != recs[j].PkgPath {
			return recs[i].PkgPath < recs[j].PkgPath
		}
		if recs[i].ObjPath != recs[j].ObjPath {
			return recs[i].ObjPath < recs[j].ObjPath
		}
		return fmt.Sprint(reflect.TypeOf(recs[i].Fact)) < fmt.Sprint(reflect.TypeOf(recs[j].Fact))
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(recs); err != nil {
		return nil, fmt.Errorf("encoding facts: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeFacts merges serialized facts into the store, resolving objects
// through lookup (import path -> *types.Package). Records whose package
// or object cannot be resolved are skipped — a fact about a type the
// current compilation cannot see is a fact it cannot act on either.
func (s *FactStore) DecodeFacts(data []byte, lookup func(path string) *types.Package) error {
	if len(data) == 0 {
		return nil
	}
	var recs []factRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&recs); err != nil {
		return fmt.Errorf("decoding facts: %w", err)
	}
	for _, r := range recs {
		pkg := lookup(r.PkgPath)
		if pkg == nil {
			continue
		}
		obj, err := ResolveObjectPath(pkg, r.ObjPath)
		if err != nil || obj == nil {
			continue
		}
		s.Export(obj, r.Fact)
	}
	return nil
}
