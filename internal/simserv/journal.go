package simserv

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gpues/internal/atomicio"
	"gpues/internal/simserv/queue"
)

// Journal persists the queue crash-only: every job transition rewrites
// that job's record with an atomic tmp+rename, so the on-disk state is
// always a consistent set of whole records — a SIGKILLed coordinator
// restarts into exactly the queue it last acknowledged. There is no
// compaction and no shared file to corrupt; one job, one file.
type Journal struct {
	dir string
}

// OpenJournal creates (or reopens) a journal rooted at dir.
func OpenJournal(dir string) (*Journal, error) {
	if dir == "" {
		return nil, fmt.Errorf("simserv: empty journal dir")
	}
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		return nil, err
	}
	return &Journal{dir: dir}, nil
}

// Dir returns the journal root.
func (jr *Journal) Dir() string { return jr.dir }

// SpoolDir returns the shared checkpoint spool for preempted jobs.
func (jr *Journal) SpoolDir() string { return filepath.Join(jr.dir, "spool") }

func (jr *Journal) jobPath(id string) string {
	return filepath.Join(jr.dir, "jobs", id+".json")
}

// Record persists the job's current state. The write must land before
// the coordinator acknowledges the transition to anyone: journal
// first, reply second is what makes a crash lose nothing.
func (jr *Journal) Record(j *queue.Job) error {
	return atomicio.WriteJSON(jr.jobPath(j.ID), j)
}

// Load reads every journaled job. Torn writes cannot exist (the
// atomic-write idiom never exposes a partial destination), but a
// record corrupted by other means is skipped with its name in skipped
// rather than poisoning the whole recovery.
func (jr *Journal) Load() (jobs []*queue.Job, skipped []string, err error) {
	entries, err := os.ReadDir(filepath.Join(jr.dir, "jobs"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || atomicio.IsTmp(name) || !strings.HasSuffix(name, ".json") {
			continue
		}
		var j queue.Job
		if err := atomicio.ReadJSON(filepath.Join(jr.dir, "jobs", name), &j); err != nil {
			skipped = append(skipped, name)
			continue
		}
		if j.ID == "" || j.ID+".json" != name {
			skipped = append(skipped, name)
			continue
		}
		jobs = append(jobs, &j)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].Seq < jobs[b].Seq })
	return jobs, skipped, nil
}
