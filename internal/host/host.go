// Package host models the CPU side of the system: the global thread
// block dispatcher (the host interface + thread block scheduler of
// Figure 1) and the CPU page fault service of the baseline demand
// paging flow (Figure 2), in which the GPU driver on the CPU allocates
// GPU physical memory, transfers page contents, and updates both page
// tables — one fault at a time.
package host

import (
	"fmt"

	"gpues/internal/clock"
	"gpues/internal/config"
	"gpues/internal/emu"
	"gpues/internal/interconnect"
	"gpues/internal/obs"
	"gpues/internal/vm"
)

// Dispatcher issues thread blocks to SMs in block-ID order and emulates
// each block lazily the first time it is handed out.
type Dispatcher struct {
	total int
	next  int
	done  int
	//simlint:ckptskip emulation closure over the workload, re-supplied at construction
	emulate func(blockID int) (*emu.BlockTrace, error)
	//simlint:ckptskip a non-nil error ends the run before any checkpoint is cut
	err error
}

// NewDispatcher builds a dispatcher over a grid of total blocks.
// emulate produces the dynamic trace of one block.
func NewDispatcher(total int, emulate func(int) (*emu.BlockTrace, error)) (*Dispatcher, error) {
	if total <= 0 || emulate == nil {
		return nil, fmt.Errorf("host: dispatcher needs blocks (%d) and an emulator", total)
	}
	return &Dispatcher{total: total, emulate: emulate}, nil
}

// NextBlock implements sm.BlockSource.
func (d *Dispatcher) NextBlock(smID int) (*emu.BlockTrace, bool) {
	if d.err != nil || d.next >= d.total {
		return nil, false
	}
	bt, err := d.emulate(d.next)
	if err != nil {
		d.err = err
		return nil, false
	}
	d.next++
	return bt, true
}

// BlockDone implements sm.BlockSource.
func (d *Dispatcher) BlockDone(smID, blockID int) { d.done++ }

// PendingBlocks implements sm.BlockSource.
func (d *Dispatcher) PendingBlocks() int { return d.total - d.next }

// Completed returns the number of finished blocks.
func (d *Dispatcher) Completed() int { return d.done }

// Issued returns the number of blocks handed out to SMs so far.
func (d *Dispatcher) Issued() int { return d.next }

// AllDone reports whether every block of the grid has completed.
func (d *Dispatcher) AllDone() bool { return d.done >= d.total }

// Err returns any emulation error encountered while dispatching.
func (d *Dispatcher) Err() error { return d.err }

// FaultStats counts CPU-side fault service activity.
type FaultStats struct {
	Served      int64
	Migrations  int64
	AllocOnly   int64
	PagesMapped int64
	// QueueCycles accumulates the time fault requests spent waiting for
	// the CPU handler to become free.
	QueueCycles int64
}

// FaultService is the CPU driver's page fault handler: a single server
// whose per-fault occupancy is the measured CPU handler cost, followed
// by the interconnect round trip (and data transfer for dirty pages).
// Faults are serviced in arrival order; under a fault storm the queueing
// delay here is what makes CPU-side handling the bottleneck (Section
// 2.4).
type FaultService struct {
	//simlint:ckptskip wiring to the shared event queue, rebuilt by the harness before restore
	q *clock.Queue
	//simlint:ckptskip wiring to the interconnect, which checkpoints itself as its own section
	link *interconnect.Link
	//simlint:ckptskip wiring to the address space, which checkpoints itself as its own section
	as *vm.AddressSpace
	//simlint:ckptskip construction-time region granularity, fixed for the life of the service
	gran uint64
	//simlint:ckptskip immutable cost table from config, re-supplied at construction
	costs config.FaultCosts
	//simlint:ckptskip unit-conversion closure over the clock rate, re-supplied at construction
	toCyc func(us float64) int64
	//simlint:ckptskip chaos hook, rebound by AttachChaos on restore; the plan checkpoints its own progress
	delayer Delayer

	cpuFree int64 // next cycle the CPU handler is free
	stats   FaultStats
	//simlint:ckptskip a non-nil error ends the run before any checkpoint is cut
	err error
	//simlint:ckptskip tracer wiring; trace emission is observability, not simulation state
	tr *obs.Tracer
}

// SetTracer installs the event tracer; nil disables tracing.
func (s *FaultService) SetTracer(tr *obs.Tracer) { s.tr = tr }

// RegisterMetrics exposes the CPU fault service's counters as gauges.
func (s *FaultService) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.Gauge(prefix+".served", func() int64 { return s.stats.Served })
	reg.Gauge(prefix+".migrations", func() int64 { return s.stats.Migrations })
	reg.Gauge(prefix+".alloc_only", func() int64 { return s.stats.AllocOnly })
	reg.Gauge(prefix+".pages_mapped", func() int64 { return s.stats.PagesMapped })
	reg.Gauge(prefix+".queue_cycles", func() int64 { return s.stats.QueueCycles })
}

// Delayer is the chaos hook of the fault service: extra cycles added to
// one fault-service round trip. A nil Delayer costs a pointer test.
type Delayer interface {
	ServiceDelay(regionBase uint64) int64
}

// NewFaultService builds the CPU fault service. toCycles converts
// microseconds to core cycles.
func NewFaultService(q *clock.Queue, link *interconnect.Link, as *vm.AddressSpace,
	granularity int, costs config.FaultCosts, toCycles func(float64) int64) (*FaultService, error) {
	if granularity <= 0 || toCycles == nil {
		return nil, fmt.Errorf("host: bad fault service config")
	}
	return &FaultService{
		q: q, link: link, as: as,
		gran:  uint64(granularity),
		costs: costs,
		toCyc: toCycles,
	}, nil
}

// Stats returns a copy of the counters.
func (s *FaultService) Stats() FaultStats { return s.stats }

// SetDelayer installs the chaos hook; nil removes it.
func (s *FaultService) SetDelayer(d Delayer) { s.delayer = d }

// Err returns the first fault-resolution failure (GPU memory
// exhaustion); the simulator surfaces it instead of a panic.
func (s *FaultService) Err() error { return s.err }

// Service resolves the fault handling region containing regionBase:
// after the CPU handler and interconnect occupancy, every registered
// page of the region is mapped into GPU memory, and done runs. The
// caller (the GPU fault unit) is responsible for merging concurrent
// faults to the same region.
func (s *FaultService) Service(regionBase uint64, kind vm.FaultKind, smID int, done func()) {
	total := s.costs.AllocOnlyUS
	if kind == vm.FaultMigrate {
		total = s.costs.MigrateUS
		s.stats.Migrations++
	} else {
		s.stats.AllocOnly++
	}
	s.stats.Served++
	totalCycles := s.toCyc(total)
	if s.delayer != nil {
		if d := s.delayer.ServiceDelay(regionBase); d > 0 {
			totalCycles += d
		}
	}
	linkCycles := totalCycles - s.toCyc(s.costs.CPUHandleUS)
	if linkCycles < 1 {
		linkCycles = 1
	}

	// The CPU driver handles faults strictly one by one (Section 2.4):
	// the whole measured round trip — interrupt, pinning, allocation,
	// transfer, page table updates — occupies the single handler. The
	// interconnect occupancy runs within that window and is tracked for
	// utilization accounting.
	now := s.q.Now()
	start := now
	if s.cpuFree > start {
		start = s.cpuFree
	}
	s.stats.QueueCycles += start - now
	s.cpuFree = start + totalCycles
	if s.tr != nil {
		s.tr.Emit(-1, obs.KMigrateStart, int32(smID), regionBase, uint64(start-now))
	}
	s.q.At(start, func() {
		s.link.Occupy(linkCycles, func() {})
	})
	s.q.At(start+totalCycles, func() {
		if s.tr != nil {
			s.tr.Emit(-1, obs.KMigrateEnd, int32(smID), regionBase, 0)
		}
		if err := s.mapRegion(regionBase); err != nil {
			// Mapping can only fail on GPU memory exhaustion. Record the
			// error for Simulator.firstError and leave the fault pending:
			// the run aborts with a structured error instead of a panic.
			if s.err == nil {
				s.err = fmt.Errorf("host: fault resolution at region %#x failed: %w", regionBase, err)
			}
			return
		}
		done()
	})
}

// mapRegion maps every registered page of the region into GPU memory.
func (s *FaultService) mapRegion(regionBase uint64) error {
	pageSize := s.as.PageSize()
	for p := regionBase; p < regionBase+s.gran; p += pageSize {
		if s.as.RegionOf(p) == nil {
			continue // handling granularity may extend past the buffer
		}
		if _, err := s.as.MapToGPU(p, nil); err != nil {
			return err
		}
		s.stats.PagesMapped++
	}
	return nil
}
