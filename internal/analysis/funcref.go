package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// FuncRef names a function or method across fact boundaries as
// "pkgpath\x00objpath". Interprocedural analyzers store callee edges as
// FuncRefs inside facts (types.Object identities do not serialize) and
// resolve them back through the fact store when walking the call graph.
type FuncRef string

// FuncRefOf builds the ref for a declared function or method.
func FuncRefOf(fn *types.Func) (FuncRef, bool) {
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	path, ok := ObjectPath(fn)
	if !ok {
		return "", false
	}
	return FuncRef(fn.Pkg().Path() + "\x00" + path), true
}

// Split returns the package path and object path halves.
func (r FuncRef) Split() (pkgPath, objPath string) {
	pkgPath, objPath, _ = strings.Cut(string(r), "\x00")
	return pkgPath, objPath
}

// String renders the ref human-readably for diagnostics: the package
// path plus the bare function or Type.Method name.
func (r FuncRef) String() string {
	pkg, obj := r.Split()
	if i := strings.IndexByte(obj, ':'); i >= 0 {
		obj = obj[i+1:]
	}
	if i := strings.LastIndexByte(pkg, '/'); i >= 0 {
		pkg = pkg[i+1:]
	}
	return pkg + "." + obj
}

// CalleeFunc resolves a call expression to the named function or method
// it statically invokes, or nil for dynamic calls (function values,
// interface methods resolve to the interface method object), conversions
// and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsInterfaceCall reports whether the call dispatches through an
// interface method (the resolved *types.Func belongs to an interface,
// not a concrete type).
func IsInterfaceCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	return types.IsInterface(s.Recv())
}
