// Package dir is the directive corpus: known verbs pass silently,
// unknown verbs are flagged so a typo cannot disable a check.
package dir

//simlint:deterministic

// Known directives on a function are fine.
//
//simlint:noalloc
func hot() {}

// A typo'd verb must be flagged, not silently ignored.
//
//simlint:noaloc // want "unknown simlint directive //simlint:noaloc"
func typo() {}

// A removed or invented verb is flagged too.
//
//simlint:threadsafe sounds plausible // want "unknown simlint directive //simlint:threadsafe"
func invented() {}

type fields struct {
	//simlint:ckptskip known verb, no diagnostic
	a int
	//simlint:ckptskp missing letter // want "unknown simlint directive //simlint:ckptskp"
	b int
}

var _ = fields{}
