// Package gpues is a cycle-level GPU architecture simulator with
// support for preemptible exceptions, reproducing "Efficient Exception
// Handling Support for GPUs" (Tanasic et al., MICRO 2017).
//
// The simulator models a 16-SM Kepler-class GPU (Table 1 of the paper):
// SIMT pipelines with scoreboarding and out-of-order commit, private L1
// caches and TLBs, a shared L2 cache and TLB, page table walkers, DRAM,
// a CPU-GPU interconnect (NVLink or PCIe), and a CPU driver that
// resolves page faults. On top of the baseline stall-on-fault pipeline
// it implements the paper's three preemptible exception schemes — warp
// disable, replay queue, and operand log — plus the two use cases:
// thread block switching on fault and GPU-local fault handling.
//
// Quick start:
//
//	spec, _ := gpues.BuildWorkload("sgemm", gpues.WorkloadParams{Scale: 1})
//	cfg := gpues.DefaultConfig()
//	cfg.Scheme = gpues.ReplayQueue
//	result, _ := gpues.Run(cfg, spec)
//	fmt.Printf("%d cycles, IPC %.2f\n", result.Cycles, result.IPC())
//
// Custom kernels are written against the internal ISA with the exported
// kernel Builder; see examples/customkernel.
package gpues

import (
	"io"

	"gpues/internal/cacti"
	"gpues/internal/chaos"
	"gpues/internal/ckpt"
	"gpues/internal/config"
	"gpues/internal/emu"
	"gpues/internal/excep"
	"gpues/internal/experiments"
	"gpues/internal/isa"
	"gpues/internal/kernel"
	"gpues/internal/obs"
	"gpues/internal/sim"
	"gpues/internal/vm"
	"gpues/internal/workloads"
)

// Configuration ---------------------------------------------------------

// Config is the full simulation configuration (Table 1 defaults via
// DefaultConfig).
type Config = config.Config

// Scheme selects the SM pipeline organization.
type Scheme = config.Scheme

// The five pipeline organizations of the paper.
const (
	// Baseline is the stall-on-fault pipeline of current GPUs.
	Baseline = config.Baseline
	// WarpDisableCommit re-enables warp fetch at the memory
	// instruction's commit.
	WarpDisableCommit = config.WarpDisableCommit
	// WarpDisableLastCheck re-enables warp fetch at the last TLB check.
	WarpDisableLastCheck = config.WarpDisableLastCheck
	// ReplayQueue captures in-flight memory instructions for replay.
	ReplayQueue = config.ReplayQueue
	// OperandLog additionally logs source operands.
	OperandLog = config.OperandLog
)

// DefaultConfig returns the paper's Table 1 configuration (16 SMs at
// 1 GHz over NVLink, baseline pipeline).
func DefaultConfig() Config { return config.Default() }

// NVLinkConfig and PCIeConfig return the two interconnect
// configurations evaluated by the paper.
func NVLinkConfig() config.InterconnectConfig { return config.NVLinkConfig() }

// PCIeConfig returns the PCIe 3.0 interconnect configuration.
func PCIeConfig() config.InterconnectConfig { return config.PCIeConfig() }

// Simulation ------------------------------------------------------------

// LaunchSpec is a runnable kernel launch: code, functional memory and
// virtual memory regions.
type LaunchSpec = sim.LaunchSpec

// Result is the outcome of a simulated kernel execution.
type Result = sim.Result

// Simulator is a one-shot full-system simulation.
type Simulator = sim.Simulator

// Run simulates the launch under the configuration.
func Run(cfg Config, spec LaunchSpec) (*Result, error) {
	return sim.RunSpec(cfg, spec)
}

// NewSimulator wires a simulator without running it (for callers that
// want to inspect the address space afterwards).
func NewSimulator(cfg Config, spec LaunchSpec) (*Simulator, error) {
	return sim.New(cfg, spec)
}

// Chaos testing ----------------------------------------------------------

// ChaosConfig parameterizes deterministic fault injection; the zero
// value injects nothing.
type ChaosConfig = chaos.Config

// ChaosPlan is a live, seeded injection plan.
type ChaosPlan = chaos.Plan

// ChaosEvent is one injected perturbation.
type ChaosEvent = chaos.Event

// ChaosResult is a chaos run's outcome: timing result, injected-event
// log, and the restartability-oracle verdict.
type ChaosResult = sim.ChaosResult

// StallReport is the structured diagnostic of a non-completing run.
type StallReport = sim.StallReport

// StallError is the error carrying a StallReport (recover it with
// errors.As).
type StallError = sim.StallError

// NewChaosPlan builds an injection plan from the config.
func NewChaosPlan(cfg ChaosConfig) *ChaosPlan { return chaos.New(cfg) }

// ChaosPlanForLevel returns a preset plan: 0 none, 1 timing noise,
// 2 transient faults + back-pressure, 3 fault storm.
func ChaosPlanForLevel(level int, seed int64) (*ChaosPlan, error) {
	return chaos.ForLevel(level, seed)
}

// RunChaos runs the launch under the plan and diffs the final memory
// against the functional oracle (restartability check). A nil plan runs
// clean.
func RunChaos(cfg Config, spec LaunchSpec, plan *ChaosPlan) (*ChaosResult, error) {
	return sim.RunChaos(cfg, spec, plan)
}

// RunChaosTraced is RunChaos with an explicit tracer whose events
// survive the run for export; a nil tracer still attaches a small
// flight recorder for stall reports.
func RunChaosTraced(cfg Config, spec LaunchSpec, plan *ChaosPlan, tr *Tracer) (*ChaosResult, error) {
	return sim.RunChaosTraced(cfg, spec, plan, tr)
}

// Device exceptions & resilience ------------------------------------------

// ExcepMode selects how a device-raised exception is delivered: precise
// (drain and kill the faulting warp) or preemptible (squash the block
// through the context-save path).
type ExcepMode = excep.Mode

// The two delivery modes.
const (
	// ExcepPrecise drains the faulting warp and reports a structured
	// device stack trace.
	ExcepPrecise = excep.ModePrecise
	// ExcepPreemptible squashes the faulting block via the paper's
	// SM-state save path; requires a preemptible scheme.
	ExcepPreemptible = excep.ModePreemptible
)

// ParseExcepMode parses "precise" or "preemptible".
func ParseExcepMode(s string) (ExcepMode, error) { return excep.ParseMode(s) }

// ExcepKind is the device-exception taxonomy (assert, illegal address,
// misaligned access, device-malloc OOM, trap).
type ExcepKind = excep.Kind

// ExcepRecord is one raised exception: coordinates, faulting PC and
// instruction, and the divergence-stack frames at the fault.
type ExcepRecord = excep.Record

// ExcepError is the structured error a run terminates with when the
// host observes device exceptions (recover it with errors.As).
type ExcepError = excep.Error

// FlipConfig parameterizes the seeded bit-flip injector of the
// resilience campaign (set it on Config.Excep.Flip).
type FlipConfig = excep.FlipConfig

// FlipOutcome classifies one resilience trial: masked, sdc, exception,
// crash, or hang.
type FlipOutcome = excep.Outcome

// ResilienceTrial is one classified flip-injection run.
type ResilienceTrial = sim.Trial

// ResilienceTrialOptions bounds one trial.
type ResilienceTrialOptions = sim.TrialOptions

// RunResilienceTrial runs the launch under cfg.Excep.Flip and
// classifies the outcome against a clean functional oracle.
func RunResilienceTrial(cfg Config, spec LaunchSpec, opt ResilienceTrialOptions) (*ResilienceTrial, error) {
	return sim.RunResilienceTrial(cfg, spec, opt)
}

// Checkpoint/restore ------------------------------------------------------

// ChaosRunOptions carries the optional knobs of a chaos run: tracer,
// periodic checkpointing, and resume.
type ChaosRunOptions = sim.ChaosRunOptions

// DivergenceError reports that a restore's deterministic replay did
// not reproduce the checkpointed state of one component (recover it
// with errors.As).
type DivergenceError = sim.DivergenceError

// RunChaosOpts is RunChaosTraced plus checkpoint/resume knobs.
func RunChaosOpts(cfg Config, spec LaunchSpec, plan *ChaosPlan, opt ChaosRunOptions) (*ChaosResult, error) {
	return sim.RunChaosOpts(cfg, spec, plan, opt)
}

// ResolveCheckpoint turns a resume argument — a checkpoint file, or a
// directory whose latest valid checkpoint is used — into a file path.
func ResolveCheckpoint(pathOrDir string) (string, error) {
	return sim.ResolveCheckpoint(pathOrDir)
}

// ComponentDigest names one component's state digest at a cycle
// boundary (Simulator.ComponentDigests, the bisection probe).
type ComponentDigest = ckpt.SectionDigest

// Observability ----------------------------------------------------------

// Tracer records typed simulation events into per-SM ring buffers for
// Chrome-trace or binary export. Attach one with Simulator.AttachTracer
// before Run; a nil or unattached tracer costs one branch per site.
type Tracer = obs.Tracer

// TracerOptions sizes and filters a Tracer.
type TracerOptions = obs.Options

// TraceEvent is one recorded simulation event.
type TraceEvent = obs.Event

// MetricsSnapshot is a point-in-time copy of the simulator's metrics
// registry (Result.Metrics), exportable as JSON or CSV.
type MetricsSnapshot = obs.Snapshot

// StallBreakdown is the per-reason warp stall accounting
// (Result.Stalls).
type StallBreakdown = obs.StallBreakdown

// StallReason indexes a StallBreakdown; String() returns its name.
type StallReason = obs.StallReason

// StallReasonFirst and StallReasonCount bound the StallReason range
// for iteration.
const (
	StallReasonFirst StallReason = 0
	StallReasonCount             = obs.NumStallReasons
)

// NewTracer builds a tracer from the options.
func NewTracer(o TracerOptions) *Tracer { return obs.New(o) }

// ParseTraceFilter parses a comma-separated list of event kinds or
// groups (all, pipeline, stall, fault, replay, switch, migrate, local)
// into a TracerOptions.Filter mask. Empty means everything.
func ParseTraceFilter(s string) (uint64, error) { return obs.ParseFilter(s) }

// Telemetry ------------------------------------------------------------

// SeriesView is the immutable view of the sampled telemetry series a
// run accumulates when Config.SampleEvery > 0 (Result.Series). Export
// it with WriteNDJSON or WriteCSV, or analyze it via Table.
type SeriesView = obs.SeriesView

// SeriesTable is a decoded telemetry series: absolute cycle stamps and
// per-column absolute values (SeriesView.Table, ReadSeriesNDJSON).
type SeriesTable = obs.SeriesTable

// SamplePoint is one decoded sample — the shape a watchdog
// StallReport embeds as its LastSample.
type SamplePoint = obs.SamplePoint

// IntervalStats is the derived per-interval analytics row (IPC,
// fault rate, stall attribution) produced by AnalyzeSeries.
type IntervalStats = obs.IntervalStats

// SeriesStats is the whole-run summary produced by SummarizeSeries:
// steady-state IPC, peak stall attribution, and fault phases.
type SeriesStats = obs.SeriesStats

// FaultPhase is one contiguous span of fault-active intervals inside
// SeriesStats.
type FaultPhase = obs.FaultPhase

// AnalyzeSeries derives per-interval rates from a decoded series.
func AnalyzeSeries(t *SeriesTable) []IntervalStats { return obs.Analyze(t) }

// SummarizeSeries reduces a decoded series to its run-level stats.
func SummarizeSeries(t *SeriesTable) SeriesStats { return obs.Summarize(t) }

// ReadSeriesNDJSON decodes a series previously written by
// SeriesView.WriteNDJSON (the gpusim -series format).
func ReadSeriesNDJSON(r io.Reader) (*SeriesTable, error) { return obs.ReadSeriesNDJSON(r) }

// TelemetrySnapshot is the read-only state generation a running
// simulation hands to its TelemetrySink at every publish interval.
type TelemetrySnapshot = sim.TelemetrySnapshot

// TelemetrySink receives telemetry snapshots on the simulation
// goroutine; see Simulator.SetTelemetrySink and the internal/obsrv
// live introspection server.
type TelemetrySink = sim.TelemetrySink

// Workloads --------------------------------------------------------------

// WorkloadParams configures a benchmark build.
type WorkloadParams = workloads.Params

// Placement selects buffer placement (resident, demand paging, lazy).
type Placement = workloads.Placement

// ResidentPlacement places all buffers in GPU memory (fault-free).
func ResidentPlacement() Placement { return workloads.Resident() }

// DemandPagingPlacement starts all data in CPU memory (Figure 12).
func DemandPagingPlacement() Placement { return workloads.DemandPaging() }

// LazyOutputPlacement leaves outputs and heap unallocated (Figures
// 13/14).
func LazyOutputPlacement() Placement { return workloads.LazyOutput() }

// BuildWorkload builds a named benchmark (see WorkloadNames).
func BuildWorkload(name string, p WorkloadParams) (LaunchSpec, error) {
	return workloads.Build(name, p)
}

// WorkloadNames lists benchmarks of a suite: "parboil", "halloc", "sdk"
// or "" for all.
func WorkloadNames(suite string) []string { return workloads.Names(suite) }

// WorkloadDescription returns a benchmark's one-line description.
func WorkloadDescription(name string) (string, error) {
	w, err := workloads.Get(name)
	if err != nil {
		return "", err
	}
	return w.Description, nil
}

// Kernel construction ----------------------------------------------------

// KernelBuilder assembles custom kernels against the simulator's ISA.
type KernelBuilder = kernel.Builder

// Kernel is a compiled kernel.
type Kernel = kernel.Kernel

// Launch pairs a kernel with its grid geometry.
type Launch = kernel.Launch

// Dim3 is a launch dimension.
type Dim3 = kernel.Dim3

// Reg is an ISA register operand.
type Reg = isa.Reg

// NewKernelBuilder starts building a kernel.
func NewKernelBuilder(name string) *KernelBuilder { return kernel.NewBuilder(name) }

// Memory is the functional global memory a launch executes against.
type Memory = emu.Memory

// NewMemory returns an empty functional memory.
func NewMemory() *Memory { return emu.NewMemory() }

// Region is a virtual memory region with an initial placement.
type Region = vm.Region

// Region kinds.
const (
	// RegionCPUInit: CPU-written input data (migrates on fault).
	RegionCPUInit = vm.RegionCPUInit
	// RegionCPUClean: CPU-owned but clean (allocation-only fault).
	RegionCPUClean = vm.RegionCPUClean
	// RegionLazy: unallocated until first touch.
	RegionLazy = vm.RegionLazy
	// RegionGPUInit: pre-placed in GPU memory (no faults).
	RegionGPUInit = vm.RegionGPUInit
)

// Experiments -------------------------------------------------------------

// ExperimentOptions configures a figure/table regeneration.
type ExperimentOptions = experiments.Options

// ExperimentResult is one regenerated figure or table.
type ExperimentResult = experiments.Result

// Figure10 regenerates the warp-disable / replay-queue comparison.
func Figure10(opt ExperimentOptions) (*ExperimentResult, error) { return experiments.Fig10(opt) }

// Figure11 regenerates the operand log size sweep.
func Figure11(opt ExperimentOptions) (*ExperimentResult, error) { return experiments.Fig11(opt) }

// Figure12 regenerates thread block switching under demand paging.
func Figure12(opt ExperimentOptions) (*ExperimentResult, error) { return experiments.Fig12(opt) }

// Figure13 regenerates local handling of dynamic-allocation faults.
func Figure13(opt ExperimentOptions) (*ExperimentResult, error) { return experiments.Fig13(opt) }

// Figure14 regenerates local handling of output-page faults.
func Figure14(opt ExperimentOptions) (*ExperimentResult, error) { return experiments.Fig14(opt) }

// SchemeScalability sweeps the GPU size for the exception schemes
// (the Section 5.5 discussion as an experiment).
func SchemeScalability(opt ExperimentOptions) (*ExperimentResult, error) {
	return experiments.SchemeScalability(opt)
}

// LocalHandlingScalability sweeps the GPU size for use case 2.
func LocalHandlingScalability(opt ExperimentOptions) (*ExperimentResult, error) {
	return experiments.LocalHandlingScalability(opt)
}

// ChaosSweep runs the preemptible schemes under deterministic fault
// injection and reports the slowdown over clean runs; every chaos run
// is checked against the functional oracle.
func ChaosSweep(opt ExperimentOptions) (*ExperimentResult, error) {
	return experiments.Chaos(opt)
}

// ResilienceSweep runs the bit-flip resilience campaign: seeded trials
// per benchmark and thread-protection level, each classified by the
// functional oracle into masked / sdc / exception / crash / hang.
func ResilienceSweep(opt ExperimentOptions) (*ExperimentResult, error) {
	return experiments.Resilience(opt)
}

// RunAblations sweeps the design parameters (switch threshold, extra
// block budget, handler concurrency, fault granularity).
func RunAblations(opt ExperimentOptions) ([]*ExperimentResult, error) {
	return experiments.Ablations(opt)
}

// Table1 renders the simulation parameters.
func Table1() string { return experiments.Table1() }

// LogOverheads is one row of Table 2 (operand log area/power).
type LogOverheads = cacti.Overheads

// Table2 computes the operand log area and power overheads.
func Table2() ([]LogOverheads, error) { return cacti.Table2() }
