package emu

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMemoryReadWriteRoundTrip(t *testing.T) {
	m := NewMemory()
	m.WriteU64(0x1000, 0xdeadbeefcafebabe)
	if got := m.ReadU64(0x1000); got != 0xdeadbeefcafebabe {
		t.Errorf("ReadU64 = %#x", got)
	}
	m.WriteU32(0x2000, 0x12345678)
	if got := m.ReadU32(0x2000); got != 0x12345678 {
		t.Errorf("ReadU32 = %#x", got)
	}
	if got := m.Read(0x2000, 2); got != 0x5678 {
		t.Errorf("Read 2 bytes = %#x", got)
	}
	if got := m.Read(0x2002, 2); got != 0x1234 {
		t.Errorf("Read upper 2 bytes = %#x", got)
	}
}

func TestMemoryUnwrittenReadsZeroWithoutAllocating(t *testing.T) {
	m := NewMemory()
	if got := m.ReadU64(0x123456789); got != 0 {
		t.Errorf("unwritten read = %#x, want 0", got)
	}
	if m.AllocatedBytes() != 0 {
		t.Errorf("read materialized %d bytes", m.AllocatedBytes())
	}
	m.WriteU32(0x5000, 1)
	if m.AllocatedBytes() != chunkSize {
		t.Errorf("allocated = %d, want one chunk (%d)", m.AllocatedBytes(), chunkSize)
	}
}

func TestMemoryCrossChunkAccess(t *testing.T) {
	m := NewMemory()
	addr := uint64(chunkSize - 3) // 8-byte value straddling two chunks
	m.WriteU64(addr, 0x0102030405060708)
	if got := m.ReadU64(addr); got != 0x0102030405060708 {
		t.Errorf("cross-chunk ReadU64 = %#x", got)
	}
	// Partial reads on each side agree byte-wise.
	if got := m.Read(addr, 1); got != 0x08 {
		t.Errorf("first byte = %#x", got)
	}
	if got := m.Read(addr+7, 1); got != 0x01 {
		t.Errorf("last byte = %#x", got)
	}
}

func TestMemoryFloatHelpers(t *testing.T) {
	m := NewMemory()
	m.WriteF64(64, 3.25)
	if got := m.ReadF64(64); got != 3.25 {
		t.Errorf("ReadF64 = %v", got)
	}
	m.WriteF32(128, 1.5)
	if got := m.ReadF32(128); got != 1.5 {
		t.Errorf("ReadF32 = %v", got)
	}
}

func TestMemoryAtom(t *testing.T) {
	m := NewMemory()
	m.WriteU64(8, 40)
	old := m.Atom(8, 8, func(o uint64) (uint64, bool) { return o + 2, true })
	if old != 40 || m.ReadU64(8) != 42 {
		t.Errorf("Atom add: old=%d new=%d", old, m.ReadU64(8))
	}
	old = m.Atom(8, 8, func(o uint64) (uint64, bool) { return 0, false })
	if old != 42 || m.ReadU64(8) != 42 {
		t.Errorf("Atom no-store: old=%d new=%d", old, m.ReadU64(8))
	}
}

func TestMemoryFill(t *testing.T) {
	m := NewMemory()
	m.Fill(0x10000, 3*chunkSize)
	if m.AllocatedBytes() < 3*chunkSize {
		t.Errorf("Fill materialized %d bytes, want >= %d", m.AllocatedBytes(), 3*chunkSize)
	}
}

// Property: any sequence of aligned writes is read back exactly
// (last-writer-wins per address).
func TestMemoryQuickWriteReadConsistency(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMemory()
		shadow := make(map[uint64]uint64)
		for i := 0; i < int(n); i++ {
			addr := uint64(rng.Intn(1<<20)) &^ 7 // 8-byte aligned within 1 MiB
			v := rng.Uint64()
			m.WriteU64(addr, v)
			shadow[addr] = v
		}
		for addr, v := range shadow {
			if m.ReadU64(addr) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: byte-granularity writes compose into the same value as one
// word write.
func TestMemoryQuickByteComposition(t *testing.T) {
	prop := func(addr32 uint32, v uint64) bool {
		addr := uint64(addr32)
		m1, m2 := NewMemory(), NewMemory()
		m1.WriteU64(addr, v)
		for i := 0; i < 8; i++ {
			m2.Write(addr+uint64(i), 1, v>>(8*i))
		}
		return m1.ReadU64(addr) == m2.ReadU64(addr)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
