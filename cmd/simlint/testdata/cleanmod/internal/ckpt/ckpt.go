// Package ckpt is a minimal stand-in for the simulator's checkpoint
// writer/reader: ckptcomplete matches Saver methods by the parameter
// type's "internal/ckpt" package suffix, so the fixture is
// self-contained.
package ckpt

// Writer appends typed fields.
type Writer struct{ fields []int64 }

// I64 appends one field.
func (w *Writer) I64(v int64) { w.fields = append(w.fields, v) }

// Reader consumes typed fields.
type Reader struct {
	fields []int64
	err    error
}

// I64 consumes one field.
func (r *Reader) I64() int64 {
	if len(r.fields) == 0 {
		return 0
	}
	v := r.fields[0]
	r.fields = r.fields[1:]
	return v
}

// Err reports the first decode failure.
func (r *Reader) Err() error { return r.err }
