// Lazy allocation example (use case 2): a kernel that uses device-side
// dynamic memory allocation. Its heap pages have no physical backing
// until first touch, so every fresh allocation faults. Compare CPU
// fault handling (every fault interrupts the CPU and crosses the
// interconnect) against the GPU-local handler that allocates physical
// memory and updates the page table on the GPU itself — the paper's
// Figure 13 experiment for one benchmark.
package main

import (
	"fmt"
	"log"

	"gpues"
)

func run(workload string, local bool, link string) *gpues.Result {
	spec, err := gpues.BuildWorkload(workload, gpues.WorkloadParams{
		Scale:     2,
		Placement: gpues.LazyOutputPlacement(), // heap pages unallocated
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := gpues.DefaultConfig()
	cfg.Scheme = gpues.ReplayQueue // local handling needs preemptible faults
	cfg.Local.Enabled = local
	if link == "pcie" {
		cfg.Link = gpues.PCIeConfig()
	}
	res, err := gpues.Run(cfg, spec)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	for _, workload := range []string{"halloc-spree", "quadtree"} {
		desc, _ := gpues.WorkloadDescription(workload)
		fmt.Printf("%s — %s\n", workload, desc)
		for _, link := range []string{"nvlink", "pcie"} {
			cpu := run(workload, false, link)
			gpu := run(workload, true, link)
			fmt.Printf("  %-7s CPU handling %8d cycles (%d faults one by one)\n",
				link, cpu.Cycles, cpu.FaultUnit.Regions)
			fmt.Printf("          GPU handling %8d cycles (%d handled locally)  speedup %.2fx\n",
				gpu.Cycles, gpu.Local.Handled, float64(cpu.Cycles)/float64(gpu.Cycles))
		}
		fmt.Println()
	}
	fmt.Println("The GPU handler is 10x slower per fault (20 us vs 2 us of CPU time),")
	fmt.Println("but it runs in parallel and never crosses the interconnect, so under")
	fmt.Println("a fault storm it wins on throughput.")
}
