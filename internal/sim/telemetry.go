package sim

import (
	"gpues/internal/obs"
)

// TelemetrySnapshot is the read-only state handed to a telemetry sink
// at each publish point. Everything in it is either a value copy or an
// immutable view (the series prefix, the trace tail), so a sink may
// hold or serve it from other goroutines while the simulation keeps
// running — the foundation of the live introspection server's
// race-freedom.
type TelemetrySnapshot struct {
	// Cycle is the simulated cycle of the publish; Finished marks the
	// final publish of a completed run.
	Cycle    int64
	Finished bool

	// ActiveSMs counts SMs in the runnable set; TotalSMs the machine
	// size. BlocksDone/BlocksTotal track grid completion. Committed is
	// the GPU-wide committed-instruction total.
	ActiveSMs   int
	TotalSMs    int
	BlocksDone  int
	BlocksTotal int
	Committed   int64

	// WatchdogWindow is the livelock window (0 when disabled);
	// SinceProgress how many cycles the progress signature has been
	// unchanged at publish time.
	WatchdogWindow int64
	SinceProgress  int64

	// Metrics is a full registry snapshot; Series the sampled series so
	// far (zero view when sampling is off); Trace the newest tracer
	// events (nil without a tracer).
	Metrics obs.Snapshot
	Series  obs.SeriesView
	Trace   []obs.Event
}

// TelemetrySink receives telemetry snapshots. Implementations must not
// touch the simulator; everything they need rides on the snapshot.
// PublishTelemetry is called from the simulation goroutine at the
// sequential flush point, never concurrently with itself.
type TelemetrySink interface {
	PublishTelemetry(TelemetrySnapshot)
}

// DefaultTelemetryEvery is the publish period in cycles when
// SetTelemetrySink is called without one.
const DefaultTelemetryEvery = 1 << 16

// telemetryTraceTail bounds the trace events carried on each snapshot.
const telemetryTraceTail = 64

// SetTelemetrySink attaches a telemetry sink publishing every that-many
// cycles (<= 0 selects DefaultTelemetryEvery, or the sampling period
// when one is configured). Call before Run. Publishing reads state and
// never schedules events, so an attached sink cannot change simulated
// cycle counts.
func (s *Simulator) SetTelemetrySink(sink TelemetrySink, every int64) {
	s.sink = sink
	if every <= 0 {
		every = DefaultTelemetryEvery
		if s.sampler != nil && s.sampler.Every() > 0 {
			every = s.sampler.Every()
		}
	}
	s.sinkEvery = every
	s.nextPublish = 0
}

// maybeTelemetry is the per-cycle telemetry hook. It runs in the main
// loop right after the tick phase — for parallel runs, after the
// barrier and the in-order ledger flush — so every sample and publish
// observes exactly the state a sequential sweep would have produced;
// that placement is what keeps sampled series byte-identical across
// worker counts. Two compares on the idle path.
func (s *Simulator) maybeTelemetry(now int64) {
	if s.sampler != nil && now >= s.nextSample {
		s.sampler.Sample(now)
		// Align to multiples of the period so a SkipTo jump lands the
		// next sample on the same boundary a step-by-step run would.
		s.nextSample = (now/s.sampler.Every() + 1) * s.sampler.Every()
	}
	if s.sink != nil && now >= s.nextPublish {
		s.publishTelemetry(now, false)
		s.nextPublish = (now/s.sinkEvery + 1) * s.sinkEvery
	}
}

// closeTelemetry takes the final sample (so the series covers the tail
// partial interval) and publishes the finished snapshot.
func (s *Simulator) closeTelemetry() {
	now := s.q.Now()
	if s.sampler != nil && s.sampler.LastCycle() < now {
		s.sampler.Sample(now)
	}
	if s.sink != nil {
		s.publishTelemetry(now, true)
	}
}

// publishTelemetry builds a snapshot and hands it to the sink.
// Allocates — bounded by the publish period, never on the per-cycle
// path.
func (s *Simulator) publishTelemetry(now int64, finished bool) {
	snap := TelemetrySnapshot{
		Cycle:       now,
		Finished:    finished,
		TotalSMs:    len(s.sms),
		BlocksDone:  s.disp.Completed(),
		BlocksTotal: s.spec.Launch.Blocks(),
		Metrics:     s.reg.Snapshot(),
		Series:      s.sampler.View(),
		Trace:       s.tracer.Tail(telemetryTraceTail),
	}
	for _, w := range s.active {
		for ; w != 0; w &= w - 1 {
			snap.ActiveSMs++
		}
	}
	for _, m := range s.sms {
		snap.Committed += m.Stats().Committed
	}
	if s.wd != nil {
		snap.WatchdogWindow = s.progressWindow
		snap.SinceProgress = now - s.wd.lastMove
	}
	s.sink.PublishTelemetry(snap)
}

// Series returns the sampled telemetry series so far (a zero view when
// Config.SampleEvery is 0).
func (s *Simulator) Series() obs.SeriesView { return s.sampler.View() }
