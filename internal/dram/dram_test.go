package dram

import (
	"testing"

	"gpues/internal/clock"
)

func drain(q *clock.Queue) {
	for q.Len() > 0 {
		q.Step()
	}
}

func TestFetchLatency(t *testing.T) {
	q := clock.New()
	d, err := New(q, 200, 256, 128)
	if err != nil {
		t.Fatal(err)
	}
	var done int64 = -1
	d.Fetch(0x1000, func() { done = q.Now() })
	drain(q)
	// 128B at 256B/cycle = 0.5 cycles occupancy + 200 latency.
	if done != 200 {
		t.Errorf("fetch completed at %d, want 200", done)
	}
	s := d.Stats()
	if s.Reads != 1 || s.BytesRead != 128 {
		t.Errorf("stats = %+v", s)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	q := clock.New()
	// 1 byte/cycle so each 128B line occupies the pipe for 128 cycles.
	d, _ := New(q, 10, 1, 128)
	var times []int64
	for i := 0; i < 4; i++ {
		d.Fetch(uint64(i*128), func() { times = append(times, q.Now()) })
	}
	drain(q)
	if len(times) != 4 {
		t.Fatalf("completions = %d", len(times))
	}
	// i-th completes at (i+1)*128 + 10.
	for i, got := range times {
		want := int64((i+1)*128 + 10)
		if got != want {
			t.Errorf("fetch %d completed at %d, want %d", i, got, want)
		}
	}
	if d.Stats().StallCycles == 0 {
		t.Error("queued requests must record stall cycles")
	}
}

func TestWritesShareBandwidth(t *testing.T) {
	q := clock.New()
	d, _ := New(q, 0, 1, 128)
	var rdDone, wrDone int64
	d.Write(0, func() { wrDone = q.Now() })
	d.Fetch(128, func() { rdDone = q.Now() })
	drain(q)
	if wrDone == 0 || rdDone <= wrDone {
		t.Errorf("write done %d, read done %d: read must queue behind write", wrDone, rdDone)
	}
}

func TestTransferBulk(t *testing.T) {
	q := clock.New()
	d, _ := New(q, 100, 256, 128)
	var done int64
	d.Transfer(64*1024, func() { done = q.Now() })
	drain(q)
	// 64KB / 256Bpc = 256 cycles + 100 latency.
	if done != 356 {
		t.Errorf("transfer completed at %d, want 356", done)
	}
	// Zero-byte transfer still completes.
	fired := false
	d.Transfer(0, func() { fired = true })
	drain(q)
	if !fired {
		t.Error("empty transfer never completed")
	}
}

func TestCompletionNeverInPast(t *testing.T) {
	q := clock.New()
	d, _ := New(q, 0, 1024, 4) // sub-cycle occupancy, zero latency
	var done int64 = -1
	d.Fetch(0, func() { done = q.Now() })
	drain(q)
	if done < 1 {
		t.Errorf("completion at %d, want >= 1 cycle after issue", done)
	}
}

func TestNewValidation(t *testing.T) {
	q := clock.New()
	if _, err := New(q, -1, 256, 128); err == nil {
		t.Error("negative latency accepted")
	}
	if _, err := New(q, 1, 0, 128); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := New(q, 1, 1, 0); err == nil {
		t.Error("zero line accepted")
	}
}
